//! The kernel: ready lists, blocking, delays and the scheduler.
//!
//! Scheduling follows FreeRTOS: fixed priorities, the highest-priority
//! ready task runs, equal-priority tasks round-robin per slice, and
//! the idle hook runs only when nothing else can. The kernel is
//! re-scheduled every slice, so a task made ready by a tick or a queue
//! operation preempts at the next quantum boundary — the same
//! granularity the simulator steps guests at.

use crate::queue::{QueueId, QueueSet, SendOutcome};
use crate::sync::{MutexId, SemaphoreId, SyncSet};
use crate::task::{BlockReason, Priority, SliceResult, TaskCode, TaskEnv, TaskId, TaskState, Tcb};
use certify_hypervisor::GuestCtx;
use std::fmt;

/// A FreeRTOS-like kernel instance.
///
/// Scheduling state is maintained incrementally: per-priority ready
/// lists (ordered least-recently-scheduled first) plus a list of
/// blocked tasks, so each [`Rtos::run_slice`] touches only the blocked
/// tasks and the head of the highest non-empty ready list instead of
/// scanning every TCB twice. This is the kernel's contribution to the
/// sub-millisecond campaign trial budget; the ordering it produces is
/// bit-identical to the historical full-scan scheduler (asserted by
/// the determinism suites).
pub struct Rtos {
    name: String,
    tasks: Vec<Tcb>,
    queues: QueueSet,
    sync: SyncSet,
    tick: u64,
    /// Monotonic schedule counter used for round-robin tie-breaking.
    schedule_seq: u64,
    /// Per-task last-scheduled stamp (parallel to `tasks`).
    last_scheduled: Vec<u64>,
    /// Ready lists indexed by priority, each sorted by ascending
    /// last-scheduled stamp (front = next to run at that priority).
    ready: Vec<std::collections::VecDeque<TaskId>>,
    /// Blocked tasks, sorted by task id — wake checks preserve the
    /// historical whole-table scan order without visiting ready TCBs.
    blocked: Vec<TaskId>,
    /// Highest priority index that may hold a ready task (no list
    /// above it is non-empty); lets the picker start its downward scan
    /// at the action instead of the top.
    top_ready: usize,
    /// `(tick, queue version, sync version)` at the end of the last
    /// wake scan; while unchanged, no blocked task's wait condition
    /// can have become true and the scan is skipped.
    wake_stamp: Option<(u64, u64, u64)>,
}

impl fmt::Debug for Rtos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rtos")
            .field("name", &self.name)
            .field("tasks", &self.tasks.len())
            .field("tick", &self.tick)
            .finish()
    }
}

impl Rtos {
    /// Creates an empty kernel.
    pub fn new(name: impl Into<String>) -> Rtos {
        Rtos {
            name: name.into(),
            tasks: Vec::new(),
            queues: QueueSet::new(),
            sync: SyncSet::new(),
            tick: 0,
            schedule_seq: 0,
            last_scheduled: Vec::new(),
            ready: Vec::new(),
            blocked: Vec::new(),
            top_ready: 0,
            wake_stamp: None,
        }
    }

    /// The kernel instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Spawns a task at the given priority.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        priority: Priority,
        code: Box<dyn TaskCode>,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Tcb {
            id,
            name: name.into(),
            priority,
            boosted: None,
            state: TaskState::Ready,
            block: None,
            slices_run: 0,
            code: Some(code),
        });
        self.last_scheduled.push(0);
        self.enqueue_ready(id, priority);
        id
    }

    /// Creates a queue with the given capacity.
    pub fn create_queue(&mut self, capacity: usize) -> QueueId {
        self.queues.create(capacity)
    }

    /// Creates a mutex (with priority inheritance).
    pub fn create_mutex(&mut self) -> MutexId {
        self.sync.create_mutex()
    }

    /// Creates a counting semaphore.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero or `initial > max`.
    pub fn create_semaphore(&mut self, initial: u32, max: u32) -> SemaphoreId {
        self.sync.create_semaphore(initial, max)
    }

    /// The synchronisation primitives (statistics).
    pub fn sync(&self) -> &SyncSet {
        &self.sync
    }

    /// Number of spawned tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of tasks at exactly the given priority.
    pub fn tasks_at_priority(&self, priority: Priority) -> usize {
        self.tasks.iter().filter(|t| t.priority == priority).count()
    }

    /// The task record for `id`.
    pub fn task(&self, id: TaskId) -> Option<&Tcb> {
        self.tasks.get(id.0 as usize)
    }

    /// Slices executed by `id`.
    pub fn slices_run(&self, id: TaskId) -> u64 {
        self.task(id).map(|t| t.slices_run).unwrap_or(0)
    }

    /// Total slices executed across all tasks.
    pub fn total_slices(&self) -> u64 {
        self.tasks.iter().map(|t| t.slices_run).sum()
    }

    /// Current kernel tick.
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// The queue set (throughput statistics).
    pub fn queues(&self) -> &QueueSet {
        &self.queues
    }

    /// Advances the kernel tick (called from the cell's timer
    /// interrupt).
    pub fn tick(&mut self) {
        self.tick += 1;
    }

    /// Inserts `id` into the ready list for `priority`, keeping the
    /// list sorted by ascending last-scheduled stamp. Equal stamps only
    /// occur for never-run tasks (stamp 0); inserting *before* equals
    /// reproduces the historical scan's "last of equal candidates
    /// wins" tie-break exactly.
    fn enqueue_ready(&mut self, id: TaskId, priority: Priority) {
        let slot = priority.0 as usize;
        if self.ready.len() <= slot {
            self.ready
                .resize_with(slot + 1, std::collections::VecDeque::new);
        }
        self.top_ready = self.top_ready.max(slot);
        let (ready, stamps) = (&mut self.ready, &self.last_scheduled);
        let stamp = stamps[id.0 as usize];
        let list = &mut ready[slot];
        let pos = list.partition_point(|t| stamps[t.0 as usize] < stamp);
        list.insert(pos, id);
    }

    /// Removes `id` from the ready list for `priority` (present by
    /// invariant when the task's state is `Ready`).
    fn dequeue_ready(&mut self, id: TaskId, priority: Priority) {
        let list = &mut self.ready[priority.0 as usize];
        if let Some(pos) = list.iter().position(|&t| t == id) {
            list.remove(pos);
        }
    }

    /// Pops the next task to run: the least-recently-scheduled head of
    /// the highest non-empty ready list. Scans downward from the
    /// `top_ready` hint.
    fn pop_next(&mut self) -> Option<TaskId> {
        let mut p = self.top_ready.min(self.ready.len().wrapping_sub(1));
        loop {
            if let Some(id) = self.ready.get_mut(p).and_then(|list| list.pop_front()) {
                self.top_ready = p;
                return Some(id);
            }
            if p == 0 {
                return None;
            }
            p -= 1;
        }
    }

    /// Wakes blocked tasks whose wait condition now holds, moving them
    /// to the ready lists. Pending blocked sends are completed by the
    /// kernel (FreeRTOS copies the item on wake). The blocked list is
    /// kept in task-id order, so deferred sends complete in the same
    /// order the historical whole-table scan processed them.
    ///
    /// Wait conditions depend only on the kernel tick and the queue /
    /// sync state, all of which carry change counters — while those
    /// are unchanged since the last scan, the scan is skipped.
    fn wake_eligible(&mut self) {
        let stamp = (self.tick, self.queues.version(), self.sync.version());
        if self.wake_stamp == Some(stamp) {
            return;
        }
        // Record the *pre-scan* stamp: a deferred send completed during
        // the scan bumps the queue version, so the next call re-scans —
        // exactly like the historical one-pass-per-slice behaviour.
        self.wake_stamp = Some(stamp);
        let mut i = 0;
        while i < self.blocked.len() {
            let id = self.blocked[i];
            let block = self.tasks[id.0 as usize].block;
            let wake = match block {
                Some(BlockReason::Delay(until)) => self.tick >= until,
                Some(BlockReason::QueueRecv(q)) => self.queues.has_items(q),
                Some(BlockReason::QueueSend(q, value)) => {
                    if self.queues.has_space(q) {
                        // Complete the deferred send on wake.
                        matches!(self.queues.try_send(q, value), SendOutcome::Sent)
                    } else {
                        false
                    }
                }
                Some(BlockReason::MutexLock(m)) => self.sync.is_free(m),
                Some(BlockReason::SemTake(s)) => self.sync.sem_count(s) > 0,
                None => true,
            };
            if wake {
                self.blocked.remove(i);
                let task = &mut self.tasks[id.0 as usize];
                task.state = TaskState::Ready;
                task.block = None;
                self.enqueue_ready(id, self.tasks[id.0 as usize].effective_priority());
            } else {
                i += 1;
            }
        }
    }

    /// Runs one scheduling quantum: wakes eligible tasks, picks the
    /// next one (the least-recently-scheduled head of the highest
    /// non-empty ready list — identical to the historical full scan
    /// over (effective priority, last-scheduled stamp)) and executes
    /// one slice of it. Returns the task that ran, or `None` if
    /// everything was blocked (the CPU would `WFI`).
    pub fn run_slice(&mut self, ctx: &mut GuestCtx<'_>) -> Option<TaskId> {
        self.wake_eligible();
        let id = self.pop_next()?;
        let idx = id.0 as usize;
        self.schedule_seq += 1;
        self.last_scheduled[idx] = self.schedule_seq;

        let result = {
            // Split borrows: the task body runs against the queue/sync
            // sets while its TCB stays in place (no Box take/put per
            // slice on the campaign hot path).
            let (tasks, queues, sync) = (&mut self.tasks, &mut self.queues, &mut self.sync);
            let task = &mut tasks[idx];
            task.state = TaskState::Running;
            let mut env = TaskEnv {
                ctx,
                tick: self.tick,
                current: id,
                queue_ops: queues,
                sync_ops: sync,
            };
            task.code
                .as_mut()
                .expect("picked task has code")
                .execute_slice(&mut env)
        };

        let task = &mut self.tasks[idx];
        task.slices_run += 1;
        // Fast path: an unboosted task that just yields goes straight
        // to the back of its base-priority list — the overwhelmingly
        // common slice (compute tasks round-robining).
        if matches!(result, SliceResult::Yield) && task.boosted.is_none() {
            task.state = TaskState::Ready;
            let slot = task.priority.0 as usize;
            self.ready[slot].push_back(id);
            return Some(id);
        }
        match result {
            SliceResult::Yield => task.state = TaskState::Ready,
            SliceResult::Delay(ticks) => {
                task.state = TaskState::Blocked;
                task.block = Some(BlockReason::Delay(self.tick + ticks.max(1)));
            }
            SliceResult::BlockOnRecv(q) => {
                task.state = TaskState::Blocked;
                task.block = Some(BlockReason::QueueRecv(q));
            }
            SliceResult::BlockOnSend(q, value) => {
                task.state = TaskState::Blocked;
                task.block = Some(BlockReason::QueueSend(q, value));
            }
            SliceResult::BlockOnMutex(m) => {
                task.state = TaskState::Blocked;
                task.block = Some(BlockReason::MutexLock(m));
                // Priority inheritance: boost the holder to at least
                // the blocked task's effective priority.
                let blocker_priority = task.effective_priority();
                if let Some(holder) = self.sync.holder(m) {
                    let holder_tcb = &mut self.tasks[holder.0 as usize];
                    let old_priority = holder_tcb.effective_priority();
                    if old_priority < blocker_priority {
                        holder_tcb.boosted = Some(blocker_priority);
                        // A boosted *ready* holder moves lists so the
                        // scheduler sees the inherited priority.
                        if self.tasks[holder.0 as usize].state == TaskState::Ready {
                            self.dequeue_ready(holder, old_priority);
                            self.enqueue_ready(holder, blocker_priority);
                        }
                    }
                }
            }
            SliceResult::BlockOnSem(s) => {
                task.state = TaskState::Blocked;
                task.block = Some(BlockReason::SemTake(s));
            }
            SliceResult::Done => {
                task.state = TaskState::Done;
            }
        }

        // Disinheritance: drop the boost once the task holds no mutex.
        if self.tasks[idx].boosted.is_some() && !self.sync.holds_any(id) {
            self.tasks[idx].boosted = None;
        }

        // Re-file the task under its post-slice (and post-disinherit)
        // effective priority. Its fresh stamp is the global maximum, so
        // a ready re-file is a plain push to the back of the list.
        match self.tasks[idx].state {
            TaskState::Ready => {
                let slot = self.tasks[idx].effective_priority().0 as usize;
                if self.ready.len() <= slot {
                    self.ready
                        .resize_with(slot + 1, std::collections::VecDeque::new);
                }
                self.top_ready = self.top_ready.max(slot);
                self.ready[slot].push_back(id);
            }
            TaskState::Blocked => {
                let pos = self.blocked.partition_point(|&t| t < id);
                self.blocked.insert(pos, id);
            }
            TaskState::Running | TaskState::Done => {}
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_board::Machine;
    use certify_hypervisor::{Hypervisor, SystemConfig};

    /// A task that yields forever, recording nothing.
    #[derive(Debug)]
    struct Spin;
    impl TaskCode for Spin {
        fn execute_slice(&mut self, _env: &mut TaskEnv<'_, '_>) -> SliceResult {
            SliceResult::Yield
        }
    }

    /// A task that finishes after `n` slices.
    #[derive(Debug)]
    struct Finite(u32);
    impl TaskCode for Finite {
        fn execute_slice(&mut self, _env: &mut TaskEnv<'_, '_>) -> SliceResult {
            if self.0 == 0 {
                SliceResult::Done
            } else {
                self.0 -= 1;
                SliceResult::Yield
            }
        }
    }

    /// A task that sleeps `n` ticks every slice.
    #[derive(Debug)]
    struct Sleeper(u64);
    impl TaskCode for Sleeper {
        fn execute_slice(&mut self, _env: &mut TaskEnv<'_, '_>) -> SliceResult {
            SliceResult::Delay(self.0)
        }
    }

    fn with_ctx<R>(f: impl FnOnce(&mut GuestCtx<'_>) -> R) -> R {
        let mut machine = Machine::new_banana_pi();
        let mut hv = Hypervisor::new(SystemConfig::banana_pi_demo());
        let mut ctx = GuestCtx::new(certify_arch::CpuId(1), &mut machine, &mut hv);
        f(&mut ctx)
    }

    #[test]
    fn highest_priority_runs_first() {
        with_ctx(|ctx| {
            let mut rtos = Rtos::new("t");
            let low = rtos.spawn("low", Priority::LOW, Box::new(Spin));
            let high = rtos.spawn("high", Priority::HIGH, Box::new(Spin));
            for _ in 0..4 {
                assert_eq!(rtos.run_slice(ctx), Some(high));
            }
            assert_eq!(rtos.slices_run(low), 0);
        });
    }

    #[test]
    fn equal_priority_round_robins() {
        with_ctx(|ctx| {
            let mut rtos = Rtos::new("t");
            let a = rtos.spawn("a", Priority::NORMAL, Box::new(Spin));
            let b = rtos.spawn("b", Priority::NORMAL, Box::new(Spin));
            let c = rtos.spawn("c", Priority::NORMAL, Box::new(Spin));
            let mut order = Vec::new();
            for _ in 0..6 {
                order.push(rtos.run_slice(ctx).unwrap());
            }
            // Each task ran exactly twice in two full rotations.
            for id in [a, b, c] {
                assert_eq!(order.iter().filter(|&&x| x == id).count(), 2);
            }
        });
    }

    #[test]
    fn done_tasks_never_run_again() {
        with_ctx(|ctx| {
            let mut rtos = Rtos::new("t");
            let f = rtos.spawn("finite", Priority::NORMAL, Box::new(Finite(2)));
            for _ in 0..3 {
                assert_eq!(rtos.run_slice(ctx), Some(f));
            }
            assert_eq!(rtos.task(f).unwrap().state, TaskState::Done);
            assert_eq!(rtos.run_slice(ctx), None);
        });
    }

    #[test]
    fn delayed_task_wakes_after_ticks() {
        with_ctx(|ctx| {
            let mut rtos = Rtos::new("t");
            let s = rtos.spawn("sleeper", Priority::NORMAL, Box::new(Sleeper(3)));
            assert_eq!(rtos.run_slice(ctx), Some(s));
            // Blocked now.
            assert_eq!(rtos.run_slice(ctx), None);
            rtos.tick();
            rtos.tick();
            assert_eq!(rtos.run_slice(ctx), None);
            rtos.tick();
            assert_eq!(rtos.run_slice(ctx), Some(s));
        });
    }

    #[test]
    fn lower_priority_runs_when_higher_blocks() {
        with_ctx(|ctx| {
            let mut rtos = Rtos::new("t");
            let low = rtos.spawn("low", Priority::LOW, Box::new(Spin));
            let high = rtos.spawn("high", Priority::HIGH, Box::new(Sleeper(10)));
            assert_eq!(rtos.run_slice(ctx), Some(high));
            assert_eq!(rtos.run_slice(ctx), Some(low));
            assert_eq!(rtos.run_slice(ctx), Some(low));
        });
    }

    /// Producer/consumer through a kernel queue, including a blocked
    /// receive that wakes when data arrives.
    #[derive(Debug)]
    struct Producer {
        q: QueueId,
        next: u32,
    }
    impl TaskCode for Producer {
        fn execute_slice(&mut self, env: &mut TaskEnv<'_, '_>) -> SliceResult {
            match env.try_send(self.q, self.next) {
                SendOutcome::Sent => {
                    self.next += 1;
                    SliceResult::Delay(2)
                }
                SendOutcome::Full => SliceResult::BlockOnSend(self.q, self.next),
                SendOutcome::NoSuchQueue => SliceResult::Done,
            }
        }
    }

    #[derive(Debug)]
    struct Consumer {
        q: QueueId,
        got: Vec<u32>,
    }
    impl TaskCode for Consumer {
        fn execute_slice(&mut self, env: &mut TaskEnv<'_, '_>) -> SliceResult {
            match env.try_recv(self.q) {
                crate::queue::RecvOutcome::Received(v) => {
                    self.got.push(v);
                    SliceResult::Yield
                }
                crate::queue::RecvOutcome::Empty => SliceResult::BlockOnRecv(self.q),
                crate::queue::RecvOutcome::NoSuchQueue => SliceResult::Done,
            }
        }
    }

    #[test]
    fn queue_blocking_and_waking_end_to_end() {
        with_ctx(|ctx| {
            let mut rtos = Rtos::new("t");
            let q = rtos.create_queue(2);
            rtos.spawn("prod", Priority::NORMAL, Box::new(Producer { q, next: 0 }));
            rtos.spawn(
                "cons",
                Priority::NORMAL,
                Box::new(Consumer { q, got: Vec::new() }),
            );
            for _ in 0..50 {
                rtos.run_slice(ctx);
                rtos.tick();
            }
            assert!(rtos.queues().received_total(q) >= 5);
            // Conservation: nothing received that was not sent.
            assert!(rtos.queues().received_total(q) <= rtos.queues().sent_total(q));
        });
    }

    #[test]
    fn blocked_sender_completes_send_on_wake() {
        with_ctx(|ctx| {
            let mut rtos = Rtos::new("t");
            let q = rtos.create_queue(1);
            // Fill the queue so the producer must block.
            rtos.create_queue(1); // unrelated queue for index separation
            assert_eq!(rtos.queues.try_send(q, 99), SendOutcome::Sent);
            let p = rtos.spawn("prod", Priority::NORMAL, Box::new(Producer { q, next: 7 }));
            assert_eq!(rtos.run_slice(ctx), Some(p));
            assert_eq!(rtos.task(p).unwrap().state, TaskState::Blocked);
            // Drain one item: the kernel completes the pending send on
            // the next scheduling point.
            assert_eq!(
                rtos.queues.try_recv(q),
                crate::queue::RecvOutcome::Received(99)
            );
            rtos.run_slice(ctx);
            assert!(rtos.queues.has_items(q));
            assert_eq!(
                rtos.queues.try_recv(q),
                crate::queue::RecvOutcome::Received(7)
            );
        });
    }

    #[test]
    fn empty_kernel_idles() {
        with_ctx(|ctx| {
            let mut rtos = Rtos::new("t");
            assert_eq!(rtos.run_slice(ctx), None);
        });
    }

    /// A task that locks a mutex, holds it for `hold` slices, then
    /// unlocks and finishes.
    #[derive(Debug)]
    struct LockHold {
        mutex: MutexId,
        hold: u32,
        locked: bool,
    }
    impl TaskCode for LockHold {
        fn execute_slice(&mut self, env: &mut TaskEnv<'_, '_>) -> SliceResult {
            use crate::sync::LockOutcome;
            if !self.locked {
                match env.try_lock(self.mutex) {
                    LockOutcome::Acquired => {
                        self.locked = true;
                        SliceResult::Yield
                    }
                    LockOutcome::HeldBy(_) => SliceResult::BlockOnMutex(self.mutex),
                    _ => SliceResult::Done,
                }
            } else if self.hold > 0 {
                self.hold -= 1;
                SliceResult::Yield
            } else {
                env.unlock(self.mutex);
                SliceResult::Done
            }
        }
    }

    #[test]
    fn priority_inheritance_prevents_inversion() {
        with_ctx(|ctx| {
            let mut rtos = Rtos::new("t");
            let m = rtos.create_mutex();
            // Low-priority holder takes the lock first.
            let low = rtos.spawn(
                "low",
                Priority::LOW,
                Box::new(LockHold {
                    mutex: m,
                    hold: 3,
                    locked: false,
                }),
            );
            assert_eq!(rtos.run_slice(ctx), Some(low)); // acquires
                                                        // A medium spinner that would normally starve `low`.
            let medium = rtos.spawn("medium", Priority::NORMAL, Box::new(Spin));
            // A high-priority task that needs the same mutex.
            let high = rtos.spawn(
                "high",
                Priority::HIGH,
                Box::new(LockHold {
                    mutex: m,
                    hold: 0,
                    locked: false,
                }),
            );
            assert_eq!(rtos.run_slice(ctx), Some(high)); // blocks on m
            assert_eq!(rtos.task(high).unwrap().state, TaskState::Blocked);
            // `low` must now outrank `medium` thanks to inheritance —
            // without it, `medium` would run here (priority inversion).
            assert_eq!(rtos.task(low).unwrap().effective_priority(), Priority::HIGH);
            for _ in 0..4 {
                assert_eq!(rtos.run_slice(ctx), Some(low), "inversion: medium ran");
            }
            // `low` released the mutex: boost dropped, high wakes and
            // acquires.
            assert_eq!(rtos.task(low).unwrap().effective_priority(), Priority::LOW);
            assert_eq!(rtos.run_slice(ctx), Some(high));
            assert_eq!(rtos.sync().holder(m), Some(high));
            let _ = medium;
        });
    }

    /// Semaphore-based producer/consumer.
    #[derive(Debug)]
    struct SemTaker {
        sem: crate::sync::SemaphoreId,
        taken: u32,
    }
    impl TaskCode for SemTaker {
        fn execute_slice(&mut self, env: &mut TaskEnv<'_, '_>) -> SliceResult {
            use crate::sync::TakeOutcome;
            match env.sem_take(self.sem) {
                TakeOutcome::Taken => {
                    self.taken += 1;
                    SliceResult::Yield
                }
                TakeOutcome::WouldBlock => SliceResult::BlockOnSem(self.sem),
                TakeOutcome::NoSuchSemaphore => SliceResult::Done,
            }
        }
    }

    #[test]
    fn semaphore_blocks_and_wakes_takers() {
        with_ctx(|ctx| {
            let mut rtos = Rtos::new("t");
            let s = rtos.create_semaphore(1, 4);
            let taker = rtos.spawn(
                "taker",
                Priority::NORMAL,
                Box::new(SemTaker { sem: s, taken: 0 }),
            );
            assert_eq!(rtos.run_slice(ctx), Some(taker)); // takes the token
            assert_eq!(rtos.run_slice(ctx), Some(taker)); // blocks
            assert_eq!(rtos.task(taker).unwrap().state, TaskState::Blocked);
            assert_eq!(rtos.run_slice(ctx), None);
            // Give a token from "ISR context".
            assert!(rtos.sync.sem_give(s));
            assert_eq!(rtos.run_slice(ctx), Some(taker));
        });
    }
}

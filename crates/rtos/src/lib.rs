//! A FreeRTOS-like real-time kernel model and the paper's workload.
//!
//! The DSN'22 paper runs "FreeRTOS, a market-leading real-time OS" in
//! the non-root cell, with a workload of:
//!
//! > *"a task to blink an onboard led, a couple of send/receive tasks,
//! > two floating-point arithmetic tasks, and fifteen integer ones."*
//!
//! This crate provides:
//!
//! * a priority-based, preemptive, tick-driven [`kernel`] with
//!   fixed-priority ready lists, round-robin within a priority level,
//!   delays, and bounded blocking [`queue`]s — the FreeRTOS semantics
//!   the workload needs;
//! * a [`task`] abstraction where task bodies are [`task::TaskCode`]
//!   implementations executed one *slice* at a time (the simulator's
//!   quantum);
//! * the exact paper [`workload`] (1 blink + sender/receiver pair +
//!   2 floating-point + 15 integer tasks);
//! * [`RtosGuest`], the [`certify_hypervisor::Guest`] implementation
//!   that boots the kernel inside a cell, prints through the
//!   hypervisor debug console (generating the `arch_handle_hvc`
//!   traffic the paper profiles) and blinks the LED through trapped
//!   GPIO MMIO (the `arch_handle_trap` traffic).
//!
//! # Example
//!
//! ```
//! use certify_rtos::kernel::Rtos;
//! use certify_rtos::task::Priority;
//! use certify_rtos::workload;
//!
//! let mut rtos = Rtos::new("freertos-demo");
//! workload::spawn_paper_workload(&mut rtos);
//! // 1 blink + 2 queue tasks + 2 float + 15 integer + idle
//! assert_eq!(rtos.task_count(), 21);
//! assert!(rtos.tasks_at_priority(Priority::IDLE) >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod guest;
pub mod kernel;
pub mod queue;
pub mod sync;
pub mod task;
pub mod workload;

pub use guest::RtosGuest;
pub use kernel::Rtos;
pub use queue::{QueueId, RecvOutcome, SendOutcome};
pub use sync::{LockOutcome, MutexId, SemaphoreId, TakeOutcome};
pub use task::{Priority, SliceResult, TaskCode, TaskEnv, TaskId, TaskState};

//! Bounded FIFO queues with FreeRTOS-style blocking semantics.
//!
//! Queues carry `u32` items (the paper's send/receive tasks exchange
//! counters). Tasks interact through [`QueueSet::try_send`] /
//! [`QueueSet::try_recv`]; when an operation would block, the task
//! returns the corresponding [`crate::task::SliceResult`] and the
//! kernel moves it to the blocked set until the queue can make
//! progress.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// A queue identifier, unique within one kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueueId(pub u32);

impl fmt::Display for QueueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue{}", self.0)
    }
}

/// Result of a non-blocking send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The item was enqueued.
    Sent,
    /// The queue is full.
    Full,
    /// No such queue.
    NoSuchQueue,
}

/// Result of a non-blocking receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvOutcome {
    /// An item was dequeued.
    Received(u32),
    /// The queue is empty.
    Empty,
    /// No such queue.
    NoSuchQueue,
}

#[derive(Debug, Default)]
struct Queue {
    capacity: usize,
    items: VecDeque<u32>,
    /// Total items ever enqueued (progress metric).
    sent_total: u64,
    /// Total items ever dequeued.
    received_total: u64,
}

/// All queues of one kernel instance.
#[derive(Debug, Default)]
pub struct QueueSet {
    queues: Vec<Queue>,
    /// Bumped on every state change; the scheduler skips its blocked
    /// wake scan while tick and the queue/sync versions are unchanged
    /// (a blocked task's wait condition cannot have become true).
    version: u64,
}

impl QueueSet {
    /// Creates an empty queue set.
    pub fn new() -> QueueSet {
        QueueSet::default()
    }

    /// Creates a queue with the given capacity and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn create(&mut self, capacity: usize) -> QueueId {
        assert!(capacity > 0, "queue capacity must be non-zero");
        self.queues.push(Queue {
            capacity,
            ..Queue::default()
        });
        QueueId((self.queues.len() - 1) as u32)
    }

    /// Attempts to enqueue without blocking.
    pub fn try_send(&mut self, id: QueueId, value: u32) -> SendOutcome {
        match self.queues.get_mut(id.0 as usize) {
            None => SendOutcome::NoSuchQueue,
            Some(q) if q.items.len() >= q.capacity => SendOutcome::Full,
            Some(q) => {
                q.items.push_back(value);
                q.sent_total += 1;
                self.version += 1;
                SendOutcome::Sent
            }
        }
    }

    /// Attempts to dequeue without blocking.
    pub fn try_recv(&mut self, id: QueueId) -> RecvOutcome {
        match self.queues.get_mut(id.0 as usize) {
            None => RecvOutcome::NoSuchQueue,
            Some(q) => match q.items.pop_front() {
                Some(v) => {
                    q.received_total += 1;
                    self.version += 1;
                    RecvOutcome::Received(v)
                }
                None => RecvOutcome::Empty,
            },
        }
    }

    /// State-change counter (see the field doc).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether the queue has at least one item (a blocked receiver can
    /// wake).
    pub fn has_items(&self, id: QueueId) -> bool {
        self.queues
            .get(id.0 as usize)
            .map(|q| !q.items.is_empty())
            .unwrap_or(false)
    }

    /// Whether the queue has free space (a blocked sender can wake).
    pub fn has_space(&self, id: QueueId) -> bool {
        self.queues
            .get(id.0 as usize)
            .map(|q| q.items.len() < q.capacity)
            .unwrap_or(false)
    }

    /// Total items ever enqueued on `id`.
    pub fn sent_total(&self, id: QueueId) -> u64 {
        self.queues
            .get(id.0 as usize)
            .map(|q| q.sent_total)
            .unwrap_or(0)
    }

    /// Total items ever dequeued from `id`.
    pub fn received_total(&self, id: QueueId) -> u64 {
        self.queues
            .get(id.0 as usize)
            .map(|q| q.received_total)
            .unwrap_or(0)
    }

    /// Number of queues.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Whether no queues exist.
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut qs = QueueSet::new();
        let q = qs.create(4);
        qs.try_send(q, 1);
        qs.try_send(q, 2);
        qs.try_send(q, 3);
        assert_eq!(qs.try_recv(q), RecvOutcome::Received(1));
        assert_eq!(qs.try_recv(q), RecvOutcome::Received(2));
        assert_eq!(qs.try_recv(q), RecvOutcome::Received(3));
        assert_eq!(qs.try_recv(q), RecvOutcome::Empty);
    }

    #[test]
    fn capacity_enforced() {
        let mut qs = QueueSet::new();
        let q = qs.create(2);
        assert_eq!(qs.try_send(q, 1), SendOutcome::Sent);
        assert_eq!(qs.try_send(q, 2), SendOutcome::Sent);
        assert_eq!(qs.try_send(q, 3), SendOutcome::Full);
        assert!(!qs.has_space(q));
        qs.try_recv(q);
        assert!(qs.has_space(q));
    }

    #[test]
    fn missing_queue_reported() {
        let mut qs = QueueSet::new();
        assert_eq!(qs.try_send(QueueId(9), 1), SendOutcome::NoSuchQueue);
        assert_eq!(qs.try_recv(QueueId(9)), RecvOutcome::NoSuchQueue);
        assert!(!qs.has_items(QueueId(9)));
        assert!(!qs.has_space(QueueId(9)));
    }

    #[test]
    fn totals_track_throughput() {
        let mut qs = QueueSet::new();
        let q = qs.create(8);
        for i in 0..5 {
            qs.try_send(q, i);
        }
        for _ in 0..3 {
            qs.try_recv(q);
        }
        assert_eq!(qs.sent_total(q), 5);
        assert_eq!(qs.received_total(q), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let mut qs = QueueSet::new();
        qs.create(0);
    }

    #[test]
    fn multiple_queues_are_independent() {
        let mut qs = QueueSet::new();
        let a = qs.create(1);
        let b = qs.create(1);
        qs.try_send(a, 10);
        assert!(qs.has_items(a));
        assert!(!qs.has_items(b));
        assert_eq!(qs.try_recv(b), RecvOutcome::Empty);
        assert_eq!(qs.try_recv(a), RecvOutcome::Received(10));
    }
}

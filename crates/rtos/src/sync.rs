//! Mutexes (with priority inheritance) and counting semaphores.
//!
//! FreeRTOS ships both primitives and the paper's "market-leading
//! real-time OS" claim rests on exactly this kind of machinery; the
//! model implements them with FreeRTOS semantics:
//!
//! * a **mutex** has an owner; when a higher-priority task blocks on
//!   an owned mutex, the owner *inherits* the blocked task's priority
//!   until it releases the lock (priority inheritance, FreeRTOS's
//!   anti-priority-inversion mechanism);
//! * a **counting semaphore** is a token pool with no ownership, used
//!   for event counting and resource pools.

use crate::task::TaskId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A mutex identifier, unique within one kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MutexId(pub u32);

impl fmt::Display for MutexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mutex{}", self.0)
    }
}

/// A semaphore identifier, unique within one kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SemaphoreId(pub u32);

impl fmt::Display for SemaphoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sem{}", self.0)
    }
}

/// Result of a non-blocking mutex acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// The caller now owns the mutex.
    Acquired,
    /// Someone else owns it; the holder is reported so the kernel can
    /// apply priority inheritance.
    HeldBy(TaskId),
    /// The caller already owns it (recursive acquisition is refused).
    AlreadyOwned,
    /// No such mutex.
    NoSuchMutex,
}

/// Result of a non-blocking semaphore take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TakeOutcome {
    /// A token was taken.
    Taken,
    /// No tokens available.
    WouldBlock,
    /// No such semaphore.
    NoSuchSemaphore,
}

#[derive(Debug, Default)]
struct Mutex {
    holder: Option<TaskId>,
    /// Total successful acquisitions (contention statistics).
    acquisitions: u64,
    /// Times a task found the mutex held.
    contentions: u64,
}

#[derive(Debug)]
struct Semaphore {
    count: u32,
    max: u32,
}

/// All mutexes and semaphores of one kernel instance.
#[derive(Debug, Default)]
pub struct SyncSet {
    mutexes: Vec<Mutex>,
    semaphores: Vec<Semaphore>,
    /// Bumped on every state change; the scheduler skips its blocked
    /// wake scan while tick and the queue/sync versions are unchanged
    /// (a blocked task's wait condition cannot have become true).
    version: u64,
}

impl SyncSet {
    /// Creates an empty set.
    pub fn new() -> SyncSet {
        SyncSet::default()
    }

    /// Creates a mutex.
    pub fn create_mutex(&mut self) -> MutexId {
        self.mutexes.push(Mutex::default());
        MutexId((self.mutexes.len() - 1) as u32)
    }

    /// Creates a counting semaphore with `initial` of `max` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero or `initial > max`.
    pub fn create_semaphore(&mut self, initial: u32, max: u32) -> SemaphoreId {
        assert!(max > 0, "semaphore max must be non-zero");
        assert!(initial <= max, "initial tokens exceed max");
        self.semaphores.push(Semaphore {
            count: initial,
            max,
        });
        SemaphoreId((self.semaphores.len() - 1) as u32)
    }

    /// Attempts to acquire `mutex` for `task`.
    pub fn try_lock(&mut self, mutex: MutexId, task: TaskId) -> LockOutcome {
        match self.mutexes.get_mut(mutex.0 as usize) {
            None => LockOutcome::NoSuchMutex,
            Some(m) => match m.holder {
                None => {
                    m.holder = Some(task);
                    m.acquisitions += 1;
                    self.version += 1;
                    LockOutcome::Acquired
                }
                Some(holder) if holder == task => LockOutcome::AlreadyOwned,
                Some(holder) => {
                    m.contentions += 1;
                    LockOutcome::HeldBy(holder)
                }
            },
        }
    }

    /// Releases `mutex` if `task` owns it. Returns `true` on success.
    pub fn unlock(&mut self, mutex: MutexId, task: TaskId) -> bool {
        match self.mutexes.get_mut(mutex.0 as usize) {
            Some(m) if m.holder == Some(task) => {
                m.holder = None;
                self.version += 1;
                true
            }
            _ => false,
        }
    }

    /// State-change counter (see the field doc).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The current holder of `mutex`.
    pub fn holder(&self, mutex: MutexId) -> Option<TaskId> {
        self.mutexes.get(mutex.0 as usize).and_then(|m| m.holder)
    }

    /// Whether `task` currently holds any mutex (used for
    /// disinheritance).
    pub fn holds_any(&self, task: TaskId) -> bool {
        self.mutexes.iter().any(|m| m.holder == Some(task))
    }

    /// Whether `mutex` is free (a blocked locker can wake and retry).
    pub fn is_free(&self, mutex: MutexId) -> bool {
        self.mutexes
            .get(mutex.0 as usize)
            .map(|m| m.holder.is_none())
            .unwrap_or(false)
    }

    /// Contention count of `mutex`.
    pub fn contentions(&self, mutex: MutexId) -> u64 {
        self.mutexes
            .get(mutex.0 as usize)
            .map(|m| m.contentions)
            .unwrap_or(0)
    }

    /// Attempts to take one token from `sem`.
    pub fn sem_take(&mut self, sem: SemaphoreId) -> TakeOutcome {
        match self.semaphores.get_mut(sem.0 as usize) {
            None => TakeOutcome::NoSuchSemaphore,
            Some(s) if s.count == 0 => TakeOutcome::WouldBlock,
            Some(s) => {
                s.count -= 1;
                self.version += 1;
                TakeOutcome::Taken
            }
        }
    }

    /// Returns one token to `sem`; saturates at the maximum (matching
    /// FreeRTOS's `xSemaphoreGive` failure on a full semaphore).
    /// Returns `true` if the token was accepted.
    pub fn sem_give(&mut self, sem: SemaphoreId) -> bool {
        match self.semaphores.get_mut(sem.0 as usize) {
            Some(s) if s.count < s.max => {
                s.count += 1;
                self.version += 1;
                true
            }
            _ => false,
        }
    }

    /// Tokens currently available in `sem`.
    pub fn sem_count(&self, sem: SemaphoreId) -> u32 {
        self.semaphores
            .get(sem.0 as usize)
            .map(|s| s.count)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_exclusion() {
        let mut sync = SyncSet::new();
        let m = sync.create_mutex();
        assert_eq!(sync.try_lock(m, TaskId(1)), LockOutcome::Acquired);
        assert_eq!(sync.try_lock(m, TaskId(2)), LockOutcome::HeldBy(TaskId(1)));
        assert_eq!(sync.try_lock(m, TaskId(1)), LockOutcome::AlreadyOwned);
        assert!(!sync.unlock(m, TaskId(2)), "non-owner unlocked");
        assert!(sync.unlock(m, TaskId(1)));
        assert_eq!(sync.try_lock(m, TaskId(2)), LockOutcome::Acquired);
    }

    #[test]
    fn contention_statistics() {
        let mut sync = SyncSet::new();
        let m = sync.create_mutex();
        sync.try_lock(m, TaskId(1));
        sync.try_lock(m, TaskId(2));
        sync.try_lock(m, TaskId(3));
        assert_eq!(sync.contentions(m), 2);
    }

    #[test]
    fn semaphore_counts_tokens() {
        let mut sync = SyncSet::new();
        let s = sync.create_semaphore(2, 3);
        assert_eq!(sync.sem_take(s), TakeOutcome::Taken);
        assert_eq!(sync.sem_take(s), TakeOutcome::Taken);
        assert_eq!(sync.sem_take(s), TakeOutcome::WouldBlock);
        assert!(sync.sem_give(s));
        assert_eq!(sync.sem_count(s), 1);
    }

    #[test]
    fn semaphore_give_saturates_at_max() {
        let mut sync = SyncSet::new();
        let s = sync.create_semaphore(3, 3);
        assert!(!sync.sem_give(s));
        assert_eq!(sync.sem_count(s), 3);
    }

    #[test]
    fn missing_primitives_reported() {
        let mut sync = SyncSet::new();
        assert_eq!(
            sync.try_lock(MutexId(0), TaskId(0)),
            LockOutcome::NoSuchMutex
        );
        assert_eq!(sync.sem_take(SemaphoreId(0)), TakeOutcome::NoSuchSemaphore);
        assert!(!sync.sem_give(SemaphoreId(0)));
        assert!(!sync.is_free(MutexId(0)));
    }

    #[test]
    #[should_panic(expected = "initial tokens exceed max")]
    fn bad_semaphore_rejected() {
        let mut sync = SyncSet::new();
        sync.create_semaphore(4, 3);
    }
}

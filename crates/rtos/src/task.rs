//! Tasks: control blocks, priorities, states and the slice-execution
//! contract.

use crate::queue::QueueId;
use certify_hypervisor::GuestCtx;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A task identifier, unique within one kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// A fixed task priority; higher values preempt lower ones
/// (FreeRTOS convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Priority(pub u8);

impl Priority {
    /// The idle task's priority (lowest).
    pub const IDLE: Priority = Priority(0);
    /// Default priority for background compute tasks.
    pub const LOW: Priority = Priority(1);
    /// Default priority for periodic I/O tasks.
    pub const NORMAL: Priority = Priority(2);
    /// Default priority for latency-sensitive tasks.
    pub const HIGH: Priority = Priority(3);
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Runnable, waiting in a ready list.
    Ready,
    /// Currently executing.
    Running,
    /// Blocked (delay or queue), with the reason held by the kernel.
    Blocked,
    /// Finished; will not run again.
    Done,
}

/// Why a task is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockReason {
    /// Sleeping until the given kernel tick.
    Delay(u64),
    /// Waiting for an item on a queue.
    QueueRecv(QueueId),
    /// Waiting for space on a queue, holding the value to deliver.
    QueueSend(QueueId, u32),
    /// Waiting to acquire a mutex.
    MutexLock(crate::sync::MutexId),
    /// Waiting for a semaphore token.
    SemTake(crate::sync::SemaphoreId),
}

/// What a task slice decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceResult {
    /// Keep the task ready; run again when scheduled.
    Yield,
    /// Sleep for the given number of ticks.
    Delay(u64),
    /// Block until an item can be received from the queue.
    BlockOnRecv(QueueId),
    /// Block until the value can be sent to the queue.
    BlockOnSend(QueueId, u32),
    /// Block until the mutex can be acquired (the kernel applies
    /// priority inheritance to the current holder).
    BlockOnMutex(crate::sync::MutexId),
    /// Block until a semaphore token is available.
    BlockOnSem(crate::sync::SemaphoreId),
    /// The task has finished.
    Done,
}

/// Services available to a task during one slice: the guest context
/// (hypercalls, MMIO, shared memory) plus kernel-mediated queue
/// operations.
pub struct TaskEnv<'a, 'b> {
    /// The cell's execution context.
    pub ctx: &'a mut GuestCtx<'b>,
    /// Current kernel tick.
    pub tick: u64,
    /// The id of the task executing this slice.
    pub current: TaskId,
    pub(crate) queue_ops: &'a mut crate::queue::QueueSet,
    pub(crate) sync_ops: &'a mut crate::sync::SyncSet,
}

impl TaskEnv<'_, '_> {
    /// Attempts a non-blocking send.
    pub fn try_send(&mut self, queue: QueueId, value: u32) -> crate::queue::SendOutcome {
        self.queue_ops.try_send(queue, value)
    }

    /// Attempts a non-blocking receive.
    pub fn try_recv(&mut self, queue: QueueId) -> crate::queue::RecvOutcome {
        self.queue_ops.try_recv(queue)
    }

    /// Attempts to acquire a mutex for the current task.
    pub fn try_lock(&mut self, mutex: crate::sync::MutexId) -> crate::sync::LockOutcome {
        self.sync_ops.try_lock(mutex, self.current)
    }

    /// Releases a mutex owned by the current task. Returns `true` on
    /// success.
    pub fn unlock(&mut self, mutex: crate::sync::MutexId) -> bool {
        self.sync_ops.unlock(mutex, self.current)
    }

    /// Attempts to take a semaphore token.
    pub fn sem_take(&mut self, sem: crate::sync::SemaphoreId) -> crate::sync::TakeOutcome {
        self.sync_ops.sem_take(sem)
    }

    /// Returns a semaphore token.
    pub fn sem_give(&mut self, sem: crate::sync::SemaphoreId) -> bool {
        self.sync_ops.sem_give(sem)
    }

    /// Prints a line through the hypervisor debug console.
    pub fn print_line(&mut self, line: &str) {
        self.ctx.console_print(line);
        self.ctx.console_print("\n");
    }
}

impl fmt::Debug for TaskEnv<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskEnv").field("tick", &self.tick).finish()
    }
}

/// A task body: called one slice at a time by the scheduler.
pub trait TaskCode: fmt::Debug {
    /// Executes one scheduling quantum and reports what to do next.
    fn execute_slice(&mut self, env: &mut TaskEnv<'_, '_>) -> SliceResult;
}

/// The kernel-side task record.
#[derive(Debug)]
pub struct Tcb {
    /// Task id.
    pub id: TaskId,
    /// Task name (for logs).
    pub name: String,
    /// Base (configured) priority.
    pub priority: Priority,
    /// Temporarily boosted priority under priority inheritance, if
    /// any. The effective priority is `max(priority, boosted)`.
    pub boosted: Option<Priority>,
    /// Current state.
    pub state: TaskState,
    /// Block reason when [`TaskState::Blocked`].
    pub block: Option<BlockReason>,
    /// Completed slices (a progress measure for the analysis crate).
    pub slices_run: u64,
    /// The task body; `None` while the slice is executing (taken out
    /// to satisfy borrow rules).
    pub code: Option<Box<dyn TaskCode>>,
}

impl Tcb {
    /// The priority the scheduler uses: the base priority, or the
    /// inherited one while boosted.
    pub fn effective_priority(&self) -> Priority {
        match self.boosted {
            Some(boost) if boost > self.priority => boost,
            _ => self.priority,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering_is_numeric() {
        assert!(Priority::HIGH > Priority::NORMAL);
        assert!(Priority::NORMAL > Priority::LOW);
        assert!(Priority::LOW > Priority::IDLE);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TaskId(3).to_string(), "task3");
        assert_eq!(Priority::HIGH.to_string(), "prio3");
    }
}

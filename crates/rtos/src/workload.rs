//! The paper's FreeRTOS workload.
//!
//! §III of the paper: *"within FreeRTOS we spawned several tasks to be
//! managed, including a task to blink an onboard led, a couple of
//! send/receive tasks, two floating-point arithmetic tasks, and
//! fifteen integer ones."*
//!
//! Each task also produces periodic console output (through the
//! hypervisor debug console, i.e. `arch_handle_hvc`) so that the
//! serial log carries a liveness signal per task class — the raw
//! material of the Figure 3 availability classification. The blink
//! task drives the LED through trapped GPIO MMIO, generating the
//! `arch_handle_trap` stream the E3 campaign injects into.

use crate::kernel::Rtos;
use crate::queue::{QueueId, RecvOutcome, SendOutcome};
use crate::task::{Priority, SliceResult, TaskCode, TaskEnv};
use certify_board::memmap;

/// How many integer tasks the paper spawns.
pub const NUM_INTEGER_TASKS: usize = 15;
/// How many floating-point tasks the paper spawns.
pub const NUM_FLOAT_TASKS: usize = 2;
/// Ticks between LED toggles.
pub const BLINK_PERIOD_TICKS: u64 = 1;
/// Console heartbeat period (in slices) for compute tasks.
pub const HEARTBEAT_SLICES: u64 = 64;

/// The LED-blink task: toggles the board LED through (trapped) GPIO
/// MMIO and reports progress on the console.
#[derive(Debug)]
pub struct BlinkTask {
    toggles: u64,
    level: bool,
}

impl BlinkTask {
    /// Creates the blink task.
    pub fn new() -> BlinkTask {
        BlinkTask {
            toggles: 0,
            level: false,
        }
    }
}

impl Default for BlinkTask {
    fn default() -> Self {
        BlinkTask::new()
    }
}

impl TaskCode for BlinkTask {
    fn execute_slice(&mut self, env: &mut TaskEnv<'_, '_>) -> SliceResult {
        self.level = !self.level;
        self.toggles += 1;
        // Read-modify-write of the GPIO data register: two traps.
        let data_reg = memmap::GPIO_BASE + memmap::GPIO_DATA_OFFSET;
        let current = env.ctx.mmio_read32(data_reg);
        if env.ctx.parked() {
            return SliceResult::Done;
        }
        let mask = 1u32 << memmap::LED_PIN;
        let next = if self.level {
            current | mask
        } else {
            current & !mask
        };
        env.ctx.mmio_write32(data_reg, next);
        if env.ctx.parked() {
            return SliceResult::Done;
        }
        if self.toggles.is_multiple_of(32) {
            env.print_line(&format!("[rtos] blink #{}", self.toggles));
        }
        SliceResult::Delay(BLINK_PERIOD_TICKS)
    }
}

/// The sender half of the paper's send/receive pair.
#[derive(Debug)]
pub struct SenderTask {
    queue: QueueId,
    next: u32,
}

impl SenderTask {
    /// Creates a sender feeding `queue`.
    pub fn new(queue: QueueId) -> SenderTask {
        SenderTask { queue, next: 0 }
    }
}

impl TaskCode for SenderTask {
    fn execute_slice(&mut self, env: &mut TaskEnv<'_, '_>) -> SliceResult {
        match env.try_send(self.queue, self.next) {
            SendOutcome::Sent => {
                if self.next.is_multiple_of(64) {
                    env.print_line(&format!("[rtos] sent {}", self.next));
                }
                self.next = self.next.wrapping_add(1);
                SliceResult::Delay(1)
            }
            SendOutcome::Full => SliceResult::BlockOnSend(self.queue, self.next),
            SendOutcome::NoSuchQueue => SliceResult::Done,
        }
    }
}

/// The receiver half of the paper's send/receive pair.
#[derive(Debug)]
pub struct ReceiverTask {
    queue: QueueId,
    received: u64,
    checksum: u32,
}

impl ReceiverTask {
    /// Creates a receiver draining `queue`.
    pub fn new(queue: QueueId) -> ReceiverTask {
        ReceiverTask {
            queue,
            received: 0,
            checksum: 0,
        }
    }
}

impl TaskCode for ReceiverTask {
    fn execute_slice(&mut self, env: &mut TaskEnv<'_, '_>) -> SliceResult {
        match env.try_recv(self.queue) {
            RecvOutcome::Received(v) => {
                self.received += 1;
                self.checksum = self.checksum.wrapping_mul(31).wrapping_add(v);
                if self.received.is_multiple_of(64) {
                    env.print_line(&format!(
                        "[rtos] recv {} sum {:08x}",
                        self.received, self.checksum
                    ));
                }
                SliceResult::Yield
            }
            RecvOutcome::Empty => SliceResult::BlockOnRecv(self.queue),
            RecvOutcome::NoSuchQueue => SliceResult::Done,
        }
    }
}

/// A floating-point arithmetic task: accumulates a Leibniz series and
/// periodically reports the running value.
#[derive(Debug)]
pub struct FloatTask {
    id: usize,
    term: u64,
    acc: f64,
    slices: u64,
}

impl FloatTask {
    /// Creates the `id`-th float task.
    pub fn new(id: usize) -> FloatTask {
        FloatTask {
            id,
            term: 0,
            acc: 0.0,
            slices: 0,
        }
    }
}

impl TaskCode for FloatTask {
    fn execute_slice(&mut self, env: &mut TaskEnv<'_, '_>) -> SliceResult {
        for _ in 0..16 {
            let sign = if self.term.is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            self.acc += sign / (2.0 * self.term as f64 + 1.0);
            self.term += 1;
        }
        self.slices += 1;
        // Heartbeats are staggered per task id so the serial log shows
        // steady liveness instead of lockstep bursts.
        if (self.slices + 29 * self.id as u64).is_multiple_of(HEARTBEAT_SLICES) {
            env.print_line(&format!("[rtos] float{} pi~{:.6}", self.id, self.acc * 4.0));
        }
        SliceResult::Yield
    }
}

/// xorshift iterations one [`IntegerTask`] slice represents.
const PRNG_STEPS_PER_SLICE: u64 = 32;

/// The xorshift32 transition is linear over GF(2), so advancing the
/// stream N steps is a 32×32 bit-matrix application. `JUMP[k]` is the
/// transition matrix raised to the `2^k`-th power (row `i` = the state
/// reached from the unit state `1 << i`), letting [`IntegerTask`]
/// advance its state by any step count in O(32·popcount) instead of
/// looping — the checksum bytes it prints are bit-identical to the
/// step-at-a-time stream.
fn xorshift_jump_table() -> &'static [[u32; 32]; 64] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Box<[[u32; 32]; 64]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = Box::new([[0u32; 32]; 64]);
        // M^1: column images of the single-step transition.
        for (i, row) in table[0].iter_mut().enumerate() {
            let mut x = 1u32 << i;
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            *row = x;
        }
        for k in 1..64 {
            let prev = table[k - 1];
            let mut next = [0u32; 32];
            for (i, slot) in next.iter_mut().enumerate() {
                *slot = apply_matrix(&prev, prev[i]);
            }
            table[k] = next;
        }
        table
    })
}

/// Applies a xorshift jump matrix to `state`.
fn apply_matrix(matrix: &[u32; 32], state: u32) -> u32 {
    let mut out = 0;
    let mut bits = state;
    while bits != 0 {
        let i = bits.trailing_zeros();
        out ^= matrix[i as usize];
        bits &= bits - 1;
    }
    out
}

/// An integer arithmetic task: runs a xorshift stream and periodically
/// reports a checksum. The stream advances `PRNG_STEPS_PER_SLICE`
/// iterations per slice, applied lazily (via the jump table) only when
/// the checksum is actually observed, so a quiet slice costs a counter
/// increment instead of a 32-iteration dependency chain — the printed
/// bytes are unchanged.
#[derive(Debug)]
pub struct IntegerTask {
    id: usize,
    state: u32,
    /// Slices whose PRNG steps have not been applied to `state` yet.
    lazy_slices: u64,
    slices: u64,
}

impl IntegerTask {
    /// Creates the `id`-th integer task (seeded distinctly).
    pub fn new(id: usize) -> IntegerTask {
        IntegerTask {
            id,
            state: 0x9e37_79b9 ^ (id as u32).wrapping_mul(0x85eb_ca6b) | 1,
            lazy_slices: 0,
            slices: 0,
        }
    }

    /// Materialises the pending PRNG steps into `state`.
    fn settle_prng(&mut self) {
        let mut steps = self.lazy_slices * PRNG_STEPS_PER_SLICE;
        self.lazy_slices = 0;
        let table = xorshift_jump_table();
        while steps != 0 {
            let k = steps.trailing_zeros();
            self.state = apply_matrix(&table[k as usize], self.state);
            steps &= steps - 1;
        }
    }
}

impl TaskCode for IntegerTask {
    fn execute_slice(&mut self, env: &mut TaskEnv<'_, '_>) -> SliceResult {
        self.lazy_slices += 1;
        self.slices += 1;
        // Staggered like the float tasks: see the comment there.
        if (self.slices + 4 * self.id as u64).is_multiple_of(HEARTBEAT_SLICES) {
            self.settle_prng();
            env.print_line(&format!("[rtos] int{:02} {:08x}", self.id, self.state));
        }
        SliceResult::Yield
    }
}

/// A safety-heartbeat task: posts a monotonically increasing counter
/// into the inter-cell shared memory so the root cell's safety
/// monitor can tell a live cell from a silently dead one (extension
/// experiment E5b — the detection mechanism the paper's outlook asks
/// for).
#[derive(Debug)]
pub struct HeartbeatTask {
    channel: certify_hypervisor::IvshmemChannel,
    count: u32,
}

impl HeartbeatTask {
    /// Creates the heartbeat task over the board's ivshmem region.
    pub fn new() -> HeartbeatTask {
        HeartbeatTask {
            channel: certify_hypervisor::IvshmemChannel::new(),
            count: 0,
        }
    }
}

impl Default for HeartbeatTask {
    fn default() -> Self {
        HeartbeatTask::new()
    }
}

impl TaskCode for HeartbeatTask {
    fn execute_slice(&mut self, env: &mut TaskEnv<'_, '_>) -> SliceResult {
        self.count = self.count.wrapping_add(1);
        let count = self.count;
        self.channel.post(env.ctx, &[count]);
        if env.ctx.parked() {
            return SliceResult::Done;
        }
        SliceResult::Delay(1)
    }
}

/// The idle task FreeRTOS always runs at the lowest priority.
#[derive(Debug, Default)]
pub struct IdleTask;

impl TaskCode for IdleTask {
    fn execute_slice(&mut self, _env: &mut TaskEnv<'_, '_>) -> SliceResult {
        SliceResult::Yield
    }
}

/// Spawns the paper's exact task set into `rtos`: one blink task, a
/// send/receive pair over a fresh queue, two floating-point tasks,
/// fifteen integer tasks, plus the idle task.
pub fn spawn_paper_workload(rtos: &mut Rtos) {
    let queue = rtos.create_queue(8);
    rtos.spawn("blink", Priority::HIGH, Box::new(BlinkTask::new()));
    rtos.spawn("sender", Priority::NORMAL, Box::new(SenderTask::new(queue)));
    rtos.spawn(
        "receiver",
        Priority::NORMAL,
        Box::new(ReceiverTask::new(queue)),
    );
    for i in 0..NUM_FLOAT_TASKS {
        rtos.spawn(
            format!("float{i}"),
            Priority::LOW,
            Box::new(FloatTask::new(i)),
        );
    }
    for i in 0..NUM_INTEGER_TASKS {
        rtos.spawn(
            format!("int{i:02}"),
            Priority::LOW,
            Box::new(IntegerTask::new(i)),
        );
    }
    rtos.spawn("idle", Priority::IDLE, Box::new(IdleTask));
}

/// The paper workload plus the E5b safety-heartbeat task (22 tasks).
pub fn spawn_paper_workload_with_heartbeat(rtos: &mut Rtos) {
    spawn_paper_workload(rtos);
    rtos.spawn("heartbeat", Priority::HIGH, Box::new(HeartbeatTask::new()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_arch::CpuId;
    use certify_board::Machine;
    use certify_hypervisor::{GuestCtx, Hypervisor, SystemConfig};

    fn with_ctx<R>(f: impl FnOnce(&mut GuestCtx<'_>) -> R) -> R {
        let mut machine = Machine::new_banana_pi();
        let mut hv = Hypervisor::new(SystemConfig::banana_pi_demo());
        let mut ctx = GuestCtx::new(CpuId(1), &mut machine, &mut hv);
        f(&mut ctx)
    }

    #[test]
    fn paper_workload_has_the_papers_task_mix() {
        let mut rtos = Rtos::new("t");
        spawn_paper_workload(&mut rtos);
        // 1 blink + 2 queue + 2 float + 15 int + idle = 21.
        assert_eq!(rtos.task_count(), 21);
        assert_eq!(rtos.tasks_at_priority(Priority::IDLE), 1);
        assert_eq!(rtos.tasks_at_priority(Priority::HIGH), 1);
        assert_eq!(
            rtos.tasks_at_priority(Priority::LOW),
            NUM_FLOAT_TASKS + NUM_INTEGER_TASKS
        );
    }

    #[test]
    fn integer_tasks_have_distinct_seeds() {
        let states: Vec<u32> = (0..NUM_INTEGER_TASKS)
            .map(|i| IntegerTask::new(i).state)
            .collect();
        let unique: std::collections::HashSet<_> = states.iter().collect();
        assert_eq!(unique.len(), NUM_INTEGER_TASKS);
    }

    /// One step-at-a-time xorshift32 iteration — the reference the
    /// jump table must reproduce exactly.
    fn xorshift_step(mut x: u32) -> u32 {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        x
    }

    #[test]
    fn xorshift_jump_matches_step_at_a_time() {
        let table = xorshift_jump_table();
        for seed in [1u32, 0x9e37_79b9, 0xdead_beef, u32::MAX] {
            // Single-step matrix is exact.
            assert_eq!(apply_matrix(&table[0], seed), xorshift_step(seed));
            // Arbitrary jumps decompose into power-of-two matrices.
            for steps in [1u64, 2, 3, 32, 63, 64, 2048, 4097] {
                let mut looped = seed;
                for _ in 0..steps {
                    looped = xorshift_step(looped);
                }
                let mut jumped = seed;
                let mut remaining = steps;
                while remaining != 0 {
                    let k = remaining.trailing_zeros();
                    jumped = apply_matrix(&table[k as usize], jumped);
                    remaining &= remaining - 1;
                }
                assert_eq!(jumped, looped, "seed {seed:#x} steps {steps}");
            }
        }
    }

    #[test]
    fn integer_task_lazy_stream_matches_eager_stream() {
        // The lazily-advanced task must print exactly the checksum a
        // slice-by-slice PRNG would have reached.
        let mut task = IntegerTask::new(3);
        let seed = task.state;
        for _ in 0..150 {
            task.lazy_slices += 1;
            task.slices += 1;
        }
        task.settle_prng();
        let mut reference = seed;
        for _ in 0..150 * PRNG_STEPS_PER_SLICE {
            reference = xorshift_step(reference);
        }
        assert_eq!(task.state, reference);
        assert_eq!(task.lazy_slices, 0);
    }

    #[test]
    fn float_task_converges_towards_pi() {
        with_ctx(|ctx| {
            let mut task = FloatTask::new(0);
            let mut queues = crate::queue::QueueSet::new();
            let mut sync = crate::sync::SyncSet::new();
            for _ in 0..1000 {
                let mut env = TaskEnv {
                    ctx,
                    tick: 0,
                    current: crate::task::TaskId(0),
                    queue_ops: &mut queues,
                    sync_ops: &mut sync,
                };
                task.execute_slice(&mut env);
            }
            assert!((task.acc * 4.0 - std::f64::consts::PI).abs() < 1e-3);
        });
    }

    #[test]
    fn workload_runs_and_blinks_under_a_real_cell() {
        // Full stack: enabled hypervisor, rtos cell, booted CPU 1.
        use certify_hypervisor::hypercall as hc;
        let mut machine = Machine::new_banana_pi();
        machine.cpu_mut(CpuId(0)).power_on();
        machine.cpu_mut(CpuId(1)).power_on();
        let platform = SystemConfig::banana_pi_demo();
        let mut hv = Hypervisor::new(platform.clone());
        let addr = memmap::ROOT_RAM_BASE + 0x0100_0000;
        hv.stage_blob(&mut machine, addr, &platform.serialize());
        assert_eq!(
            hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_HYPERVISOR_ENABLE, addr, 0),
            0
        );
        assert_eq!(
            hv.handle_hvc(&mut machine, CpuId(1), hc::HVC_CPU_OFF, 0, 0),
            0
        );
        let cell_addr = memmap::ROOT_RAM_BASE + 0x0200_0000;
        hv.stage_blob(
            &mut machine,
            cell_addr,
            &SystemConfig::freertos_cell().serialize(),
        );
        let id = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_CREATE, cell_addr, 0);
        assert!(id > 0);
        hv.handle_hvc(
            &mut machine,
            CpuId(0),
            hc::HVC_CELL_SET_LOADABLE,
            id as u32,
            0,
        );
        hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_START, id as u32, 0);
        hv.handle_irq(&mut machine, CpuId(1));
        let entry = hv.boot_pending(CpuId(1)).unwrap();
        hv.handle_hvc(&mut machine, CpuId(1), hc::HVC_CPU_BOOT, entry, 0);

        let mut rtos = Rtos::new("freertos-demo");
        spawn_paper_workload(&mut rtos);
        for _ in 0..500 {
            machine.advance();
            let mut ctx = GuestCtx::new(CpuId(1), &mut machine, &mut hv);
            rtos.run_slice(&mut ctx);
            rtos.tick();
        }
        assert!(machine.gpio.toggle_count(memmap::LED_PIN) > 10);
        assert!(machine.uart.byte_count() > 0);
        assert!(!machine.cpu(CpuId(1)).is_parked());
        // Handler traffic profile: both trap (GPIO) and hvc (console)
        // streams exist on CPU 1, as the paper's profiling found.
        use certify_hypervisor::HandlerKind;
        assert!(hv.call_count(HandlerKind::ArchHandleTrap, CpuId(1)) > 10);
        assert!(hv.call_count(HandlerKind::ArchHandleHvc, CpuId(1)) > 10);
    }
}

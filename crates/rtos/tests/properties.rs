//! Property-based tests for the RTOS kernel.

use certify_arch::CpuId;
use certify_board::Machine;
use certify_hypervisor::{GuestCtx, Hypervisor, SystemConfig};
use certify_rtos::kernel::Rtos;
use certify_rtos::task::{Priority, SliceResult, TaskCode, TaskEnv, TaskState};
use proptest::prelude::*;

/// A task that yields forever.
#[derive(Debug)]
struct Spin;
impl TaskCode for Spin {
    fn execute_slice(&mut self, _env: &mut TaskEnv<'_, '_>) -> SliceResult {
        SliceResult::Yield
    }
}

/// A task that alternates between running and sleeping.
#[derive(Debug)]
struct Sleeper(u64);
impl TaskCode for Sleeper {
    fn execute_slice(&mut self, _env: &mut TaskEnv<'_, '_>) -> SliceResult {
        SliceResult::Delay(self.0)
    }
}

fn with_ctx<R>(f: impl FnOnce(&mut GuestCtx<'_>) -> R) -> R {
    let mut machine = Machine::new_banana_pi();
    let mut hv = Hypervisor::new(SystemConfig::banana_pi_demo());
    let mut ctx = GuestCtx::new(CpuId(1), &mut machine, &mut hv);
    f(&mut ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The scheduler never runs a blocked or done task, whatever mix
    /// of spinners and sleepers is spawned and however ticks are
    /// interleaved.
    #[test]
    fn scheduler_never_runs_non_ready_tasks(
        spec in proptest::collection::vec((0u8..3, 1u64..5), 1..8),
        ticks in proptest::collection::vec(any::<bool>(), 10..60),
    ) {
        with_ctx(|ctx| {
            let mut rtos = Rtos::new("prop");
            for (i, (kind, delay)) in spec.iter().enumerate() {
                let priority = Priority((i % 4) as u8);
                let code: Box<dyn TaskCode> = match kind {
                    0 => Box::new(Spin),
                    _ => Box::new(Sleeper(*delay)),
                };
                rtos.spawn(format!("t{i}"), priority, code);
            }
            for tick in &ticks {
                if *tick {
                    rtos.tick();
                }
                if let Some(ran) = rtos.run_slice(ctx) {
                    // The ran task was observed Ready when picked; its
                    // state afterwards is whatever the slice decided,
                    // but it must never be inconsistent.
                    let task = rtos.task(ran).unwrap();
                    prop_assert!(
                        task.state == TaskState::Ready || task.state == TaskState::Blocked,
                        "task in state {:?} after a slice", task.state
                    );
                }
            }
            Ok(())
        })?;
    }

    /// Work conservation: when at least one spinner exists, the
    /// scheduler never idles.
    #[test]
    fn work_conservation_with_a_spinner(extra_sleepers in 0usize..6) {
        with_ctx(|ctx| {
            let mut rtos = Rtos::new("prop");
            rtos.spawn("spin", Priority::IDLE, Box::new(Spin));
            for i in 0..extra_sleepers {
                rtos.spawn(format!("s{i}"), Priority::NORMAL, Box::new(Sleeper(3)));
            }
            for _ in 0..50 {
                prop_assert!(rtos.run_slice(ctx).is_some(), "scheduler idled");
                rtos.tick();
            }
            Ok(())
        })?;
    }

    /// Total slice count equals the number of successful run_slice
    /// calls (accounting is exact).
    #[test]
    fn slice_accounting_is_exact(slices in 1u32..100) {
        with_ctx(|ctx| {
            let mut rtos = Rtos::new("prop");
            rtos.spawn("a", Priority::NORMAL, Box::new(Spin));
            rtos.spawn("b", Priority::NORMAL, Box::new(Spin));
            let mut ran = 0u64;
            for _ in 0..slices {
                if rtos.run_slice(ctx).is_some() {
                    ran += 1;
                }
            }
            prop_assert_eq!(rtos.total_slices(), ran);
            Ok(())
        })?;
    }

    /// Queue conservation: items received never exceed items sent,
    /// and after draining, the difference is exactly the in-queue
    /// count — under arbitrary interleavings.
    #[test]
    fn queue_conservation(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut queues = certify_rtos::queue::QueueSet::new();
        let q = queues.create(4);
        let mut value = 0u32;
        for is_send in ops {
            if is_send {
                let _ = queues.try_send(q, value);
                value += 1;
            } else {
                let _ = queues.try_recv(q);
            }
        }
        prop_assert!(queues.received_total(q) <= queues.sent_total(q));
        // Drain whatever is left: afterwards every sent item has been
        // received exactly once.
        while let certify_rtos::queue::RecvOutcome::Received(_) = queues.try_recv(q) {}
        prop_assert_eq!(queues.received_total(q), queues.sent_total(q));
    }
}

//! The shard worker executable: one handshake in on stdin, one seed
//! range of trial rows + stats out on stdout. Spawned by
//! `certify_shard::coordinator::run_sharded`; exits non-zero on a bad
//! handshake (2) or a failed result stream (3) so the coordinator can
//! tell a completed shard from a truncated one.

use std::io::{self, BufWriter};

fn main() {
    let stdin = io::stdin().lock();
    let stdout = BufWriter::new(io::stdout().lock());
    if let Err(error) = certify_shard::run_worker(stdin, stdout) {
        eprintln!("shard_worker: {error}");
        std::process::exit(error.exit_code());
    }
}

//! The shard coordinator: partitions, spawns, multiplexes, recovers.
//!
//! [`run_sharded`] executes one [`Campaign`] as N OS worker processes
//! plus this coordinating process:
//!
//! 1. **Partition.** The trial index space `0..trials` is split into
//!    N contiguous near-equal ranges. Trials are self-contained
//!    (seeded `base_seed + i`), so a shard is just a sub-range.
//! 2. **Spawn.** Each shard gets a `shard_worker` process
//!    ([`std::process::Command`]); the handshake (scenario + range)
//!    goes down its stdin, row/stats frames come back up its stdout.
//! 3. **Multiplex + reorder.** A reader thread per shard parses
//!    frames and posts rows into a shared reorder buffer keyed by
//!    *global* trial sequence; the consumer drains it strictly in
//!    seed order — the same delivery contract as
//!    `Campaign::run_parallel_streamed`, one level up. A per-shard
//!    buffered-row cap applies pipe backpressure to workers running
//!    far ahead of the delivery front.
//! 4. **Fold.** Each shard's final `Done` stats are merged in shard
//!    order with [`CampaignStats::merge`]; the result (and the
//!    concatenated CSV) is bit-identical to a single-process
//!    `run_streamed` of the whole campaign.
//! 5. **Recover.** A shard that dies or violates the protocol —
//!    non-zero exit, EOF before `Done`, CRC mismatch, out-of-order or
//!    out-of-range rows, a `Done` whose counts disagree with the
//!    range — is re-run from scratch on a fresh worker. Rows are
//!    deterministic functions of their seed, so already-delivered
//!    rows stay valid and re-received ones are dropped; output bytes
//!    are identical whether or not a worker died mid-run.
//!
//! Known limitation: there is no read *timeout* — a worker that is
//! alive but silent (a trial that never terminates) blocks its
//! reader, exactly as the same trial would block the in-process
//! engine. Detecting wedged-but-alive workers (e.g. a stats-frame
//! heartbeat deadline) is future transport work.

use crate::protocol::{read_frame, write_frame, Frame, Handshake, ProtocolError};
use certify_core::telemetry::outcome_rows;
use certify_core::{Campaign, CampaignStats, TraceDump};
use certify_lint::{certify_scenario, has_errors, lint_partition, lint_scenario, Diagnostic};
use certify_obs::{
    Clock, CountingReader, ProgressObserver, ProgressSnapshot, ProgressTracker, ShardMetrics,
};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{self, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Condvar, Mutex};

/// How a sharded run is executed.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Worker process count (clamped to at least 1 and at most the
    /// trial count).
    pub shards: usize,
    /// Workers snapshot stats every this many rows (0 = only the
    /// final `Done` stats).
    pub stats_every: u64,
    /// Attempts per shard (first run + retries) before the campaign
    /// fails.
    pub max_attempts: u32,
    /// The worker executable. `None` resolves `shard_worker` via
    /// [`resolve_worker`].
    pub worker: Option<PathBuf>,
    /// Deliberately SIGKILL one shard's first-attempt worker after it
    /// has produced this many rows — the recovery path's test hook.
    pub sabotage: Option<Sabotage>,
    /// Reorder-buffer cap: a shard may have at most this many
    /// undelivered rows buffered before its reader stops draining the
    /// pipe (backpressuring the worker) until the delivery front
    /// catches up.
    pub buffered_rows_per_shard: usize,
    /// Persist every received trace dump as
    /// `trace-<seq>.json` under this directory (created if missing).
    /// Dumps are also returned in [`ShardedRun::dumps`] either way;
    /// only traced campaigns ([`Campaign::with_trace`]) produce any.
    pub dump_dir: Option<PathBuf>,
}

impl ShardOptions {
    /// Defaults for `shards` worker processes.
    pub fn new(shards: usize) -> ShardOptions {
        ShardOptions {
            shards,
            stats_every: 256,
            max_attempts: 3,
            worker: None,
            sabotage: None,
            buffered_rows_per_shard: 65_536,
            dump_dir: None,
        }
    }

    /// Replaces the worker executable (builder style).
    pub fn with_worker(mut self, worker: impl Into<PathBuf>) -> ShardOptions {
        self.worker = Some(worker.into());
        self
    }

    /// Arms the kill-one-worker test hook (builder style).
    pub fn with_sabotage(mut self, shard: usize, after_rows: u64) -> ShardOptions {
        self.sabotage = Some(Sabotage { shard, after_rows });
        self
    }

    /// Persists received trace dumps under `dir` (builder style).
    pub fn with_dump_dir(mut self, dir: impl Into<PathBuf>) -> ShardOptions {
        self.dump_dir = Some(dir.into());
        self
    }
}

/// The coordinator-driven worker-kill test hook: SIGKILL shard
/// `shard`'s first attempt after `after_rows` rows, forcing the
/// recovery path.
#[derive(Debug, Clone, Copy)]
pub struct Sabotage {
    /// Shard index to kill.
    pub shard: usize,
    /// Rows to accept from it first.
    pub after_rows: u64,
}

/// What a completed sharded run produced.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// The merged campaign stats — identical to a single-process
    /// `run_streamed` of the same campaign.
    pub stats: CampaignStats,
    /// Rows delivered (== the campaign's trial count).
    pub rows: u64,
    /// Worker attempts that failed and were recovered from. A healthy
    /// run reports 0; a sabotaged one at least 1.
    pub worker_failures: u32,
    /// The contiguous `(start, len)` range each shard executed.
    pub shard_ranges: Vec<(usize, usize)>,
    /// Transport metrics merged across all shards: rows, frames,
    /// frame bytes, CRC rejects, retries and wasted re-run trials.
    /// Counters are always collected (they are deterministic counts);
    /// `elapsed_ns` (and thus `rows_per_sec`) is populated only by
    /// [`run_sharded_observed`], which has a clock.
    pub metrics: ShardMetrics,
    /// The same metrics, per shard.
    pub shard_metrics: Vec<ShardMetrics>,
    /// Trace dumps received from the workers, as `(seq, dump)` in
    /// global seed order (empty unless the campaign was traced).
    /// Byte-identical to the dumps an in-process traced run of the
    /// same campaign delivers — pinned by
    /// `crates/shard/tests/sharded.rs`.
    pub dumps: Vec<(u64, TraceDump)>,
}

/// Why a sharded run failed.
#[derive(Debug)]
pub enum ShardError {
    /// The campaign's scenario failed static analysis: running it
    /// would burn worker processes on a campaign that certifies
    /// nothing. The diagnostics say what is wrong.
    BadScenario(Vec<Diagnostic>),
    /// The shard partition failed validation (overlap, gap, or
    /// out-of-bounds range): rows would collide or go missing.
    BadPartition(Vec<Diagnostic>),
    /// No worker executable could be resolved.
    NoWorker(String),
    /// A shard exhausted its attempts.
    ShardFailed {
        /// The failing shard.
        shard: usize,
        /// Attempts made.
        attempts: u32,
        /// The last attempt's failure.
        last_error: String,
    },
    /// Writing the coordinator's own CSV output failed.
    Output(io::Error),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::BadScenario(diags) => {
                write!(f, "scenario failed static analysis: ")?;
                fmt_diagnostics(f, diags)
            }
            ShardError::BadPartition(diags) => {
                write!(f, "shard partition failed validation: ")?;
                fmt_diagnostics(f, diags)
            }
            ShardError::NoWorker(e) => write!(f, "no shard worker executable: {e}"),
            ShardError::ShardFailed {
                shard,
                attempts,
                last_error,
            } => write!(
                f,
                "shard {shard} failed after {attempts} attempt(s): {last_error}"
            ),
            ShardError::Output(e) => write!(f, "writing coordinator output failed: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Renders a diagnostic list as one `;`-joined line for error text.
fn fmt_diagnostics(f: &mut fmt::Formatter<'_>, diags: &[Diagnostic]) -> fmt::Result {
    for (i, diag) in diags.iter().enumerate() {
        if i > 0 {
            write!(f, "; ")?;
        }
        write!(f, "{diag}")?;
    }
    Ok(())
}

/// Locates the `shard_worker` executable: the `CERTIFY_SHARD_WORKER`
/// environment variable if set, else a binary named `shard_worker`
/// next to the current executable or one directory up (which covers
/// `target/<profile>/deps/<test>` → `target/<profile>/shard_worker`).
pub fn resolve_worker() -> Result<PathBuf, String> {
    if let Some(path) = std::env::var_os("CERTIFY_SHARD_WORKER") {
        return Ok(PathBuf::from(path));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe failed: {e}"))?;
    let mut dir = exe.parent();
    for _ in 0..2 {
        let Some(d) = dir else { break };
        let candidate = d.join("shard_worker");
        if candidate.is_file() {
            return Ok(candidate);
        }
        dir = d.parent();
    }
    Err(format!(
        "no `shard_worker` next to {} — build it with `cargo build -p certify_shard` \
         or point CERTIFY_SHARD_WORKER at it",
        exe.display()
    ))
}

/// Splits `trials` into `shards` contiguous near-equal `(start, len)`
/// ranges covering `0..trials` exactly.
pub fn partition(trials: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, trials.max(1));
    (0..shards)
        .map(|i| {
            let start = i * trials / shards;
            let end = (i + 1) * trials / shards;
            (start, end - start)
        })
        .collect()
}

/// Shared coordinator state behind one mutex.
struct Coord {
    /// Undelivered rows, keyed by global trial sequence.
    rows: BTreeMap<u64, Vec<u8>>,
    /// Trace dumps received so far, keyed by global trial sequence.
    /// Retried shards re-send dumps; duplicates are byte-identical
    /// (same seed), so the first copy wins.
    dumps: BTreeMap<u64, TraceDump>,
    /// Next global sequence the consumer will deliver.
    next_deliver: u64,
    /// Undelivered buffered rows per shard (backpressure accounting).
    buffered: Vec<usize>,
    /// Each shard's final stats, once its `Done` frame validated.
    done: Vec<Option<CampaignStats>>,
    /// Per-shard transport metrics, folded in by each attempt.
    metrics: Vec<ShardMetrics>,
    /// Progress snapshots queued by shard readers for the consumer to
    /// hand to the observer (empty unless the run is observed).
    snapshots: VecDeque<ProgressSnapshot>,
    /// Failed worker attempts (including recovered ones).
    failures: u32,
    /// First fatal error; set alongside `abort`.
    fatal: Option<ShardError>,
    /// Everyone should stop.
    abort: bool,
}

impl Coord {
    fn set_fatal(&mut self, error: ShardError) {
        if self.fatal.is_none() {
            self.fatal = Some(error);
        }
        self.abort = true;
    }
}

/// The two wake-up channels of the reorder buffer: `ready` wakes the
/// consumer (a row or completion arrived), `space` wakes
/// backpressured readers (the delivery front advanced).
struct Signals {
    state: Mutex<Coord>,
    ready: Condvar,
    space: Condvar,
}

impl Signals {
    /// Sets a fatal error and wakes every thread.
    fn fail(&self, error: ShardError) {
        self.state
            .lock()
            .expect("coordinator lock")
            .set_fatal(error);
        self.ready.notify_all();
        self.space.notify_all();
    }
}

/// Runs `campaign` across worker processes, streaming the campaign's
/// CSV rows (header first, strict seed order) into `csv_out` when
/// given, and returns the merged stats.
///
/// The output — stats and CSV bytes — is identical to single-process
/// [`Campaign::run_streamed`] with a `CsvSink`, whatever the shard
/// count, OS scheduling, or mid-run worker deaths survived via
/// re-execution.
pub fn run_sharded(
    campaign: &Campaign,
    opts: &ShardOptions,
    csv_out: Option<&mut dyn Write>,
) -> Result<ShardedRun, ShardError> {
    run_sharded_engine(campaign, opts, csv_out, None)
}

/// [`run_sharded`] with live observability: each worker's periodic
/// `Stats` frames become per-shard [`ProgressSnapshot`]s (source =
/// the shard index) delivered to `observer` from the consumer thread,
/// followed by one final whole-campaign snapshot (source = `None`),
/// and the returned [`ShardedRun::metrics`] carry per-shard elapsed
/// time and rows/sec taken on `clock`.
///
/// Telemetry never feeds back into execution: stats, CSV bytes and
/// delivery order are identical to an unobserved [`run_sharded`].
pub fn run_sharded_observed(
    campaign: &Campaign,
    opts: &ShardOptions,
    csv_out: Option<&mut dyn Write>,
    clock: &(dyn Clock + Sync),
    observer: &mut dyn ProgressObserver,
) -> Result<ShardedRun, ShardError> {
    run_sharded_engine(campaign, opts, csv_out, Some((clock, observer)))
}

/// The coordinator behind both public entry points; `telemetry: None`
/// skips clocks and snapshots but still counts transport metrics.
fn run_sharded_engine(
    campaign: &Campaign,
    opts: &ShardOptions,
    mut csv_out: Option<&mut dyn Write>,
    telemetry: Option<(&(dyn Clock + Sync), &mut dyn ProgressObserver)>,
) -> Result<ShardedRun, ShardError> {
    // Split the bundle so shard readers can share the clock while the
    // consumer holds the observer mutably.
    let (clock, mut observer) = match telemetry {
        Some((clock, observer)) => (Some(clock), Some(observer)),
        None => (None, None),
    };
    // Refuse a statically broken scenario before touching a worker:
    // a dead-window or unsatisfiable-rate campaign would complete
    // green across every shard and certify nothing.
    let scenario_diags = lint_scenario(campaign.scenario());
    if has_errors(&scenario_diags) {
        return Err(ShardError::BadScenario(scenario_diags));
    }
    // Derive the pre-flight certificate. Error-severity certificate
    // findings (a provably-zero budget, cell ops the hypervisor must
    // reject) refuse the run before any worker spawns; the
    // fingerprint rides every handshake so each worker can verify it
    // derives the same abstract interpretation from the shipped
    // scenario.
    let (certificate, certificate_diags) = certify_scenario(campaign.scenario());
    if has_errors(&certificate_diags) {
        return Err(ShardError::BadScenario(certificate_diags));
    }
    let certificate_fingerprint = certificate.fingerprint();
    let worker = match &opts.worker {
        Some(path) => path.clone(),
        None => resolve_worker().map_err(ShardError::NoWorker)?,
    };
    if let Some(out) = csv_out.as_deref_mut() {
        out.write_all(certify_analysis::export::CSV_HEADER.as_bytes())
            .map_err(ShardError::Output)?;
    }

    let trials = campaign.trials();
    let ranges = partition(trials, opts.shards);
    // Validate the partition contract — contiguous, non-overlapping,
    // exactly covering `0..trials` — before spawning anything.
    let partition_diags = lint_partition(0, trials, &ranges);
    if has_errors(&partition_diags) {
        return Err(ShardError::BadPartition(partition_diags));
    }
    if trials == 0 {
        return Ok(ShardedRun {
            stats: CampaignStats::new(campaign.scenario().name.clone()),
            rows: 0,
            worker_failures: 0,
            shard_ranges: Vec::new(),
            metrics: ShardMetrics::default(),
            shard_metrics: Vec::new(),
            dumps: Vec::new(),
        });
    }

    let tracker = clock.map(|clock| ProgressTracker::new(clock, None, trials as u64));

    let signals = Signals {
        state: Mutex::new(Coord {
            rows: BTreeMap::new(),
            dumps: BTreeMap::new(),
            next_deliver: 0,
            buffered: vec![0; ranges.len()],
            done: vec![None; ranges.len()],
            metrics: vec![ShardMetrics::default(); ranges.len()],
            snapshots: VecDeque::new(),
            failures: 0,
            fatal: None,
            abort: false,
        }),
        ready: Condvar::new(),
        space: Condvar::new(),
    };

    std::thread::scope(|scope| {
        for (shard, &(start, len)) in ranges.iter().enumerate() {
            let (signals, worker, campaign, opts) = (&signals, &worker, campaign, opts);
            scope.spawn(move || {
                run_shard(
                    signals,
                    worker,
                    campaign,
                    opts,
                    shard,
                    start,
                    len,
                    certificate_fingerprint,
                    clock,
                );
            });
        }
        // The caller's thread is the consumer: drain the reorder
        // buffer in global seed order.
        deliver_rows(
            &signals,
            &ranges,
            trials as u64,
            csv_out,
            observer.as_deref_mut(),
        );
    });

    let state = signals.state.into_inner().expect("coordinator lock");
    if let Some(fatal) = state.fatal {
        return Err(fatal);
    }
    let mut stats = CampaignStats::new(campaign.scenario().name.clone());
    for shard_stats in state.done.iter().flatten() {
        stats.merge(shard_stats);
    }
    let mut metrics = ShardMetrics::default();
    for shard_metrics in &state.metrics {
        metrics.merge(shard_metrics);
    }
    let dumps: Vec<(u64, TraceDump)> = state.dumps.into_iter().collect();
    if let Some(dir) = &opts.dump_dir {
        std::fs::create_dir_all(dir).map_err(ShardError::Output)?;
        for (seq, dump) in &dumps {
            let path = dir.join(format!("trace-{seq:08}.json"));
            let mut doc = dump.to_json().render();
            doc.push('\n');
            std::fs::write(path, doc).map_err(ShardError::Output)?;
        }
    }
    if let (Some(tracker), Some(observer)) = (&tracker, observer) {
        // The closing whole-campaign snapshot: every row delivered,
        // outcomes from the merged stats.
        let snapshot = tracker.snapshot(trials as u64, outcome_rows(&stats.distribution));
        observer.on_progress(&snapshot);
    }
    Ok(ShardedRun {
        stats,
        rows: trials as u64,
        worker_failures: state.failures,
        shard_ranges: ranges,
        metrics,
        shard_metrics: state.metrics,
        dumps,
    })
}

/// The consumer loop: deliver rows `0..total` in order, hand queued
/// progress snapshots to `observer`, then wait for every shard's
/// `Done` stats.
fn deliver_rows(
    signals: &Signals,
    ranges: &[(usize, usize)],
    total: u64,
    mut csv_out: Option<&mut dyn Write>,
    // The explicit `+ '_` object bound keeps the observer reborrowable
    // by the caller after this returns (`&mut dyn Trait` is invariant
    // in the trait object's default lifetime).
    mut observer: Option<&mut (dyn ProgressObserver + '_)>,
) {
    let shard_of = |seq: u64| {
        ranges
            .iter()
            .position(|&(start, len)| (start as u64..(start + len) as u64).contains(&seq))
            .expect("every sequence belongs to a shard")
    };
    let mut delivered = 0u64;
    // Snapshots drained under the lock, emitted outside it — observer
    // code must never run while holding the coordinator mutex.
    let mut pending: Vec<ProgressSnapshot> = Vec::new();
    let mut emit = |pending: &mut Vec<ProgressSnapshot>| {
        for snapshot in pending.drain(..) {
            if let Some(observer) = observer.as_deref_mut() {
                observer.on_progress(&snapshot);
            }
        }
    };
    loop {
        let mut state = signals.state.lock().expect("coordinator lock");
        pending.extend(state.snapshots.drain(..));
        if state.abort {
            return;
        }
        if delivered == total {
            // All rows are out; wait for the last `Done` frames.
            if state.done.iter().all(|d| d.is_some()) {
                drop(state);
                emit(&mut pending);
                return;
            }
            if !pending.is_empty() {
                drop(state);
                emit(&mut pending);
                continue;
            }
            drop(signals.ready.wait(state).expect("coordinator lock"));
            continue;
        }
        let Some(row) = state.rows.remove(&delivered) else {
            if !pending.is_empty() {
                drop(state);
                emit(&mut pending);
                continue;
            }
            drop(signals.ready.wait(state).expect("coordinator lock"));
            continue;
        };
        state.buffered[shard_of(delivered)] -= 1;
        state.next_deliver = delivered + 1;
        drop(state);
        signals.space.notify_all();
        emit(&mut pending);
        if let Some(out) = csv_out.as_deref_mut() {
            if let Err(e) = out.write_all(&row) {
                signals.fail(ShardError::Output(e));
                return;
            }
        }
        delivered += 1;
    }
}

/// One shard's lifecycle: spawn, stream, validate, retry.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    signals: &Signals,
    worker: &PathBuf,
    campaign: &Campaign,
    opts: &ShardOptions,
    shard: usize,
    start: usize,
    len: usize,
    certificate_fingerprint: u64,
    clock: Option<&(dyn Clock + Sync)>,
) {
    let started_ns = clock.map(|clock| clock.now_ns());
    for attempt in 1..=opts.max_attempts.max(1) {
        if signals.state.lock().expect("coordinator lock").abort {
            return;
        }
        let sabotage = opts
            .sabotage
            .filter(|s| s.shard == shard && attempt == 1)
            .map(|s| s.after_rows);
        match run_attempt(
            signals,
            worker,
            campaign,
            opts,
            shard,
            start,
            len,
            certificate_fingerprint,
            sabotage,
            clock,
        ) {
            Ok(()) => {
                if let (Some(clock), Some(started_ns)) = (clock, started_ns) {
                    let elapsed = clock.now_ns().saturating_sub(started_ns);
                    let mut state = signals.state.lock().expect("coordinator lock");
                    state.metrics[shard].elapsed_ns.set(elapsed);
                }
                return;
            }
            Err(error) => {
                let mut state = signals.state.lock().expect("coordinator lock");
                state.failures += 1;
                if attempt == opts.max_attempts.max(1) {
                    state.set_fatal(ShardError::ShardFailed {
                        shard,
                        attempts: attempt,
                        last_error: error,
                    });
                    drop(state);
                    signals.ready.notify_all();
                    signals.space.notify_all();
                    return;
                }
            }
        }
    }
}

/// Reaps a worker we no longer trust.
fn discard_child(mut child: Child) {
    let _ = child.kill();
    let _ = child.wait();
}

/// One worker attempt over the shard's full range. `Ok(())` means the
/// shard's rows are all posted and its validated `Done` stats are
/// recorded; any `Err` leaves the reorder buffer consistent (rows
/// already posted stay — they are deterministic in the seed — and the
/// retry simply re-fills the rest).
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    signals: &Signals,
    worker: &PathBuf,
    campaign: &Campaign,
    opts: &ShardOptions,
    shard: usize,
    start: usize,
    len: usize,
    certificate_fingerprint: u64,
    sabotage: Option<u64>,
    clock: Option<&(dyn Clock + Sync)>,
) -> Result<(), String> {
    let mut child = Command::new(worker)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawning {} failed: {e}", worker.display()))?;

    // Ship the handshake. A worker that died instantly surfaces here
    // as a broken pipe — the normal failure path.
    let handshake = Frame::Handshake(Handshake {
        scenario: campaign.scenario().clone(),
        base_seed: campaign.base_seed(),
        start_trial: start as u64,
        len: len as u64,
        stats_every: opts.stats_every,
        certificate_fingerprint,
        trace: campaign.trace().cloned(),
    });
    {
        let mut stdin = child.stdin.take().expect("stdin was piped");
        if let Err(e) = write_frame(&mut stdin, &handshake).and_then(|()| stdin.flush()) {
            discard_child(child);
            return Err(format!("writing handshake failed: {e}"));
        }
    }

    let stdout = child.stdout.take().expect("stdout was piped");
    // Count the bytes pulled off the pipe underneath the frame
    // buffer: for a drained stream this is the shard's wire volume.
    let mut frames = io::BufReader::new(CountingReader::new(stdout));
    let end = (start + len) as u64;
    let mut expected = start as u64;
    let mut received = 0u64;
    let mut killed = false;
    let mut frame_count = 0u64;
    let mut crc_rejects = 0u64;
    let tracker = clock.map(|clock| ProgressTracker::new(clock, Some(shard as u32), len as u64));
    // `Ok(Some(stats))` = clean done frame; `Ok(None)` = the run was
    // aborted elsewhere and this reader is dying quietly.
    let outcome = loop {
        let frame = match read_frame(&mut frames) {
            Ok(Some(frame)) => {
                frame_count += 1;
                frame
            }
            Ok(None) => break Err("worker stream ended before its done frame".into()),
            Err(e) => {
                if matches!(e, ProtocolError::BadCrc { .. }) {
                    crc_rejects += 1;
                }
                break Err(format!("worker stream failed: {e}"));
            }
        };
        match frame {
            Frame::TrialRow { seq, row } => {
                if seq != expected {
                    break Err(format!(
                        "row sequence violation: got {seq}, expected {expected} in [{start}, {end})"
                    ));
                }
                expected += 1;
                received += 1;
                let mut state = signals.state.lock().expect("coordinator lock");
                // Backpressure: cap this shard's undelivered buffer.
                while state.buffered[shard] >= opts.buffered_rows_per_shard.max(1)
                    && state.next_deliver < seq
                    && !state.abort
                {
                    state = signals.space.wait(state).expect("coordinator lock");
                }
                if state.abort {
                    drop(state);
                    break Ok(None); // dying quietly; fatal is already set
                }
                // Rows before the delivery front were already written
                // out by a previous attempt; re-received copies are
                // byte-identical (same seed), so drop them.
                if seq >= state.next_deliver && state.rows.insert(seq, row).is_none() {
                    state.buffered[shard] += 1;
                }
                drop(state);
                signals.ready.notify_all();
                if sabotage == Some(received) {
                    // The test hook: SIGKILL the worker mid-stream and
                    // let the normal failure detection see the corpse.
                    let _ = child.kill();
                    killed = true;
                }
            }
            Frame::TraceDump { seq, dump } => {
                // A dump frame must ride directly behind its own row.
                if seq.checked_add(1) != Some(expected) {
                    break Err(format!(
                        "trace-dump for trial {seq} did not follow its row (next row: {expected})"
                    ));
                }
                let mut state = signals.state.lock().expect("coordinator lock");
                // A retried shard re-sends dumps; duplicates are
                // byte-identical (same seed), so the first copy wins.
                state.dumps.entry(seq).or_insert(dump);
            }
            Frame::Stats { rows, stats } => {
                if rows != received {
                    break Err(format!(
                        "stats frame claims {rows} rows, coordinator saw {received}"
                    ));
                }
                if let Some(tracker) = &tracker {
                    // The worker's periodic snapshot becomes a live
                    // per-shard progress report, queued for the
                    // consumer to hand to the observer.
                    let snapshot = tracker.snapshot(received, outcome_rows(&stats.distribution));
                    let mut state = signals.state.lock().expect("coordinator lock");
                    state.snapshots.push_back(snapshot);
                    drop(state);
                    signals.ready.notify_all();
                }
            }
            Frame::Done { rows, stats } => {
                if rows != len as u64 || expected != end {
                    break Err(format!(
                        "done frame after {received} of {len} rows (claims {rows})"
                    ));
                }
                if stats.trials != len {
                    break Err(format!(
                        "done stats cover {} trials, shard has {len}",
                        stats.trials
                    ));
                }
                break Ok(Some(stats));
            }
            frame => break Err(format!("unexpected {} frame", frame.name())),
        }
    };

    let result = match outcome {
        // A fast worker can win the race against the sabotage SIGKILL
        // and still deliver a clean `Done`; the attempt must count as
        // failed anyway so the recovery path is exercised
        // deterministically (its rows stay valid either way).
        Ok(Some(_)) if killed => {
            discard_child(child);
            Err("worker was killed mid-run (sabotage hook)".into())
        }
        Ok(Some(stats)) => {
            // A clean `Done` must be followed by EOF and exit 0 —
            // anything else and the worker disagrees with its own
            // shutdown frame.
            let trailing = read_frame(&mut frames);
            match child.wait() {
                Err(e) => Err(format!("wait failed: {e}")),
                Ok(_) if !matches!(trailing, Ok(None)) => {
                    Err("worker kept talking after its done frame".into())
                }
                Ok(status) if !status.success() => {
                    Err(format!("worker exited {status} after a clean done frame"))
                }
                Ok(_) => {
                    let mut state = signals.state.lock().expect("coordinator lock");
                    state.done[shard] = Some(stats);
                    drop(state);
                    signals.ready.notify_all();
                    Ok(true)
                }
            }
        }
        Ok(None) => {
            discard_child(child);
            Ok(false)
        }
        Err(error) => {
            discard_child(child);
            Err(error)
        }
    };

    // Fold this attempt's transport metrics, whatever its fate: a
    // failed attempt is a retry whose `received` rows must be re-run.
    let wire_bytes = frames.get_ref().bytes_read();
    {
        let mut state = signals.state.lock().expect("coordinator lock");
        let metrics = &mut state.metrics[shard];
        metrics.frames.add(frame_count);
        metrics.frame_bytes.add(wire_bytes);
        metrics.crc_rejects.add(crc_rejects);
        match &result {
            Ok(true) => metrics.rows.add(len as u64),
            Ok(false) => {}
            Err(_) => {
                metrics.retries.inc();
                metrics.wasted_rerun_trials.add(received);
            }
        }
    }
    result.map(|_| ())
}

//! `certify-shard` — multi-process sharded campaign execution.
//!
//! The execution tier above `Campaign::run_parallel_streamed`: where
//! the in-process engine spreads trials over threads, this crate
//! spreads them over **OS processes** — the architecture that scales
//! a fault-injection campaign past one address space and, with a
//! socket instead of a pipe, past one machine. A campaign's trials
//! are self-contained (seeded `base_seed + i`), so the unit of
//! distribution is a contiguous seed range:
//!
//! ```text
//!                       ┌────────────────────┐
//!                       │    coordinator     │  merged CampaignStats
//!                       │ (this process)     │  + seed-ordered CSV
//!                       └──┬──────┬──────┬───┘
//!            handshake ↓ / │rows  │      │     length-prefixed,
//!            rows+stats ↑  │      │      │     CRC-checked frames
//!                       ┌──┴──┐┌──┴──┐┌──┴──┐  over stdin/stdout
//!                       │ wkr ││ wkr ││ wkr │
//!                       │ 0..k││k..2k││2k..n│  one seed range each
//!                       └─────┘└─────┘└─────┘
//! ```
//!
//! * [`protocol`] — the versioned, length-prefixed, CRC-per-frame
//!   binary wire protocol (handshake, trial-row, stats, done);
//! * [`worker`] — the worker-process runner: [`worker::RemoteSink`]
//!   (a `TrialSink` that frames CSV rows over a pipe) plus
//!   [`worker::run_worker`], the whole `shard_worker` conversation;
//! * [`coordinator`] — [`coordinator::run_sharded`]: partitions the
//!   seed space, spawns workers, multiplexes their streams back into
//!   global seed order, folds shard stats with `CampaignStats::merge`
//!   and re-runs the range of any worker that dies or violates the
//!   protocol.
//!
//! Sharded output is **bit-identical** to single-process
//! `run_streamed` output — stats and CSV bytes — including when a
//! worker is SIGKILLed mid-run and its shard re-executed (pinned by
//! this crate's end-to-end tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod protocol;
pub mod worker;

pub use coordinator::{
    partition, resolve_worker, run_sharded, run_sharded_observed, ShardError, ShardOptions,
    ShardedRun,
};
pub use protocol::{crc32, read_frame, write_frame, Frame, Handshake, ProtocolError};
pub use worker::{run_worker, RemoteSink, WorkerError};

//! The shard wire protocol: versioned, length-prefixed, CRC-checked
//! frames.
//!
//! A sharded campaign is one coordinator process and N worker
//! processes connected by byte pipes (the workers' stdin/stdout).
//! Everything crossing a pipe is a [`Frame`]:
//!
//! ```text
//!   [len: u32 LE] [kind: u8 | payload …] [crc32: u32 LE]
//!                  └──── len bytes ────┘
//! ```
//!
//! `len` counts the kind byte plus the payload; the CRC (IEEE 802.3
//! polynomial) covers exactly those bytes, so a frame torn by a dying
//! worker or corrupted in flight is detected before its payload is
//! interpreted. Payloads use the [`certify_core::codec`] binary
//! encoding and must decode *exactly* (no trailing bytes).
//!
//! The conversation is fixed: the coordinator sends one
//! [`Frame::Handshake`] (magic + protocol version + the full
//! [`Scenario`] + the shard's trial range) down the worker's stdin;
//! the worker streams [`Frame::TrialRow`] frames (one CSV row per
//! trial, in trial order) up its stdout — each optionally followed by
//! a [`Frame::TraceDump`] when the handshake configured tracing and
//! the trial matched the dump policy — interleaved with periodic
//! [`Frame::Stats`] progress snapshots, and finishes with one
//! [`Frame::Done`] carrying the shard's authoritative
//! [`CampaignStats`]. Anything else — wrong first frame, out-of-order
//! rows, CRC mismatch, EOF before `Done` — is a protocol violation
//! the coordinator treats as a dead shard.

use certify_core::codec::{decode_exact, DecodeError, Reader, Wire};
use certify_core::{CampaignStats, Scenario, TraceConfig, TraceDump};
use std::fmt;
use std::io::{self, Read, Write};

/// Handshake magic: "CSHD".
pub const MAGIC: u32 = 0x4353_4844;

/// Protocol version carried in every handshake. Bump on any change to
/// the frame layout or payload encodings. Version 2 added the
/// scenario-certificate fingerprint to the handshake; version 3 added
/// the optional tracing configuration and the trace-dump frame.
pub const VERSION: u16 = 3;

/// Upper bound on `len`: no legal frame is anywhere near this large,
/// so a longer prefix means a corrupt or hostile stream — reject it
/// instead of allocating gigabytes.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

const KIND_HANDSHAKE: u8 = 1;
const KIND_TRIAL_ROW: u8 = 2;
const KIND_STATS: u8 = 3;
const KIND_DONE: u8 = 4;
const KIND_TRACE_DUMP: u8 = 5;

/// The coordinator → worker job description.
#[derive(Debug, Clone, PartialEq)]
pub struct Handshake {
    /// The scenario every trial runs.
    pub scenario: Scenario,
    /// The campaign's base seed (trial `i` is seeded `base_seed + i`).
    pub base_seed: u64,
    /// First (global) trial index of this shard.
    pub start_trial: u64,
    /// Number of trials in this shard.
    pub len: u64,
    /// Emit a [`Frame::Stats`] snapshot every this many rows
    /// (0 = never).
    pub stats_every: u64,
    /// Fingerprint of the coordinator's
    /// [`certify_core::ScenarioCertificate`] for the scenario. The
    /// worker re-derives the certificate from the shipped scenario and
    /// refuses the handshake on a mismatch: coordinator and worker
    /// must agree on what the campaign is allowed to observe before a
    /// single trial runs.
    pub certificate_fingerprint: u64,
    /// Tracing configuration: `Some` runs every shard trial with a
    /// flight recorder and streams a [`Frame::TraceDump`] after each
    /// trial row the dump policy selects.
    pub trace: Option<TraceConfig>,
}

impl Wire for Handshake {
    fn encode(&self, out: &mut Vec<u8>) {
        MAGIC.encode(out);
        VERSION.encode(out);
        self.scenario.encode(out);
        self.base_seed.encode(out);
        self.start_trial.encode(out);
        self.len.encode(out);
        self.stats_every.encode(out);
        self.certificate_fingerprint.encode(out);
        self.trace.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Handshake, DecodeError> {
        let magic = u32::decode(r)?;
        if magic != MAGIC {
            return Err(DecodeError::Invalid {
                what: "handshake magic mismatch",
            });
        }
        let version = u16::decode(r)?;
        if version != VERSION {
            return Err(DecodeError::Invalid {
                what: "protocol version mismatch",
            });
        }
        Ok(Handshake {
            scenario: Scenario::decode(r)?,
            base_seed: u64::decode(r)?,
            start_trial: u64::decode(r)?,
            len: u64::decode(r)?,
            stats_every: u64::decode(r)?,
            certificate_fingerprint: u64::decode(r)?,
            trace: Option::decode(r)?,
        })
    }
}

/// One protocol frame.
///
/// The `Handshake` variant dwarfs the rest, but frames are transient:
/// one lives on the stack per read/write and is destructured
/// immediately — nothing ever stores a `Vec<Frame>` — so boxing would
/// buy an allocation per message and save nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Coordinator → worker: the job (sent exactly once, first).
    Handshake(Handshake),
    /// Worker → coordinator: one finished trial's CSV row bytes,
    /// tagged with its *global* trial sequence number.
    TrialRow {
        /// Global trial index (`base_seed + seq` was the seed).
        seq: u64,
        /// The rendered CSV row, including the trailing newline.
        row: Vec<u8>,
    },
    /// Worker → coordinator: one anomalous trial's flight-recorder
    /// dump, sent immediately after that trial's [`Frame::TrialRow`].
    /// The dump itself carries no sequence number (so it compares
    /// byte-identical to an in-process capture); the frame supplies
    /// it.
    TraceDump {
        /// Global trial index the dump belongs to.
        seq: u64,
        /// The captured flight recorder.
        dump: TraceDump,
    },
    /// Worker → coordinator: periodic progress snapshot.
    Stats {
        /// Rows streamed so far.
        rows: u64,
        /// Stats over the rows streamed so far.
        stats: CampaignStats,
    },
    /// Worker → coordinator: clean shutdown. The stats cover the
    /// shard's whole range and are what the coordinator merges.
    Done {
        /// Total rows streamed.
        rows: u64,
        /// The shard's final stats.
        stats: CampaignStats,
    },
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Handshake(_) => KIND_HANDSHAKE,
            Frame::TrialRow { .. } => KIND_TRIAL_ROW,
            Frame::TraceDump { .. } => KIND_TRACE_DUMP,
            Frame::Stats { .. } => KIND_STATS,
            Frame::Done { .. } => KIND_DONE,
        }
    }

    /// A short name for error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Handshake(_) => "handshake",
            Frame::TrialRow { .. } => "trial-row",
            Frame::TraceDump { .. } => "trace-dump",
            Frame::Stats { .. } => "stats",
            Frame::Done { .. } => "done",
        }
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying pipe failed (or ended mid-frame).
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversize {
        /// The claimed frame length.
        len: u32,
    },
    /// The frame body did not match its CRC.
    BadCrc {
        /// CRC computed over the received body.
        computed: u32,
        /// CRC carried by the frame.
        carried: u32,
    },
    /// The kind byte named no known frame type.
    UnknownKind(u8),
    /// The payload failed to decode (includes magic/version
    /// mismatches, which surface as handshake decode failures).
    Decode(DecodeError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::Oversize { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME} cap")
            }
            ProtocolError::BadCrc { computed, carried } => {
                write!(
                    f,
                    "frame crc mismatch: computed {computed:#010x}, carried {carried:#010x}"
                )
            }
            ProtocolError::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
            ProtocolError::Decode(e) => write!(f, "payload decode failed: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> ProtocolError {
        ProtocolError::Io(e)
    }
}

impl From<DecodeError> for ProtocolError {
    fn from(e: DecodeError) -> ProtocolError {
        ProtocolError::Decode(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected), the CRC of zip/ethernet/png.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Writes one frame (length prefix, body, CRC). Does not flush.
pub fn write_frame<W: Write + ?Sized>(out: &mut W, frame: &Frame) -> io::Result<()> {
    let mut body = vec![frame.kind()];
    match frame {
        Frame::Handshake(handshake) => handshake.encode(&mut body),
        Frame::TrialRow { seq, row } => {
            seq.encode(&mut body);
            row.encode(&mut body);
        }
        Frame::TraceDump { seq, dump } => {
            seq.encode(&mut body);
            dump.encode(&mut body);
        }
        Frame::Stats { rows, stats } | Frame::Done { rows, stats } => {
            rows.encode(&mut body);
            stats.encode(&mut body);
        }
    }
    let len = u32::try_from(body.len()).expect("frame body fits u32");
    assert!(len <= MAX_FRAME, "frame body exceeds MAX_FRAME");
    out.write_all(&len.to_le_bytes())?;
    out.write_all(&body)?;
    out.write_all(&crc32(&body).to_le_bytes())
}

/// Reads one frame. `Ok(None)` is a clean end of stream (EOF exactly
/// at a frame boundary); EOF anywhere inside a frame is an error.
pub fn read_frame<R: Read + ?Sized>(input: &mut R) -> Result<Option<Frame>, ProtocolError> {
    // The length prefix: distinguish clean EOF (zero bytes read) from
    // a torn prefix.
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match input.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(ProtocolError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len == 0 || len > MAX_FRAME {
        return Err(ProtocolError::Oversize { len });
    }
    let mut body = vec![0u8; len as usize];
    input.read_exact(&mut body)?;
    let mut crc_bytes = [0u8; 4];
    input.read_exact(&mut crc_bytes)?;
    let carried = u32::from_le_bytes(crc_bytes);
    let computed = crc32(&body);
    if computed != carried {
        return Err(ProtocolError::BadCrc { computed, carried });
    }

    let (kind, payload) = (body[0], &body[1..]);
    let frame = match kind {
        KIND_HANDSHAKE => Frame::Handshake(decode_exact(payload)?),
        KIND_TRIAL_ROW => {
            let mut reader = Reader::new(payload);
            let seq = u64::decode(&mut reader)?;
            let row = Vec::decode(&mut reader)?;
            reader.finish()?;
            Frame::TrialRow { seq, row }
        }
        KIND_TRACE_DUMP => {
            let mut reader = Reader::new(payload);
            let seq = u64::decode(&mut reader)?;
            let dump = TraceDump::decode(&mut reader)?;
            reader.finish()?;
            Frame::TraceDump { seq, dump }
        }
        KIND_STATS | KIND_DONE => {
            let mut reader = Reader::new(payload);
            let rows = u64::decode(&mut reader)?;
            let stats = CampaignStats::decode(&mut reader)?;
            reader.finish()?;
            if kind == KIND_STATS {
                Frame::Stats { rows, stats }
            } else {
                Frame::Done { rows, stats }
            }
        }
        kind => return Err(ProtocolError::UnknownKind(kind)),
    };
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_core::sink::NullSink;
    use certify_core::Campaign;

    fn sample_handshake() -> Handshake {
        Handshake {
            scenario: Scenario::e3_fig3(),
            base_seed: 0xD5_2022,
            start_trial: 128,
            len: 64,
            stats_every: 16,
            certificate_fingerprint: 0xFEED_F00D,
            trace: Some(TraceConfig::default()),
        }
    }

    fn sample_frames() -> Vec<Frame> {
        let stats = Campaign::new(Scenario::e1_root_high(), 3, 9).run_streamed(&mut NullSink);
        let config = TraceConfig::default();
        let (_, dump) = Scenario::golden(400)
            .runner()
            .run_trial_traced(131, Some(&config));
        vec![
            Frame::Handshake(sample_handshake()),
            Frame::TrialRow {
                seq: 131,
                row: b"131,correct,0,0,running,,42,,0,,\n".to_vec(),
            },
            Frame::TraceDump {
                seq: 131,
                dump: dump.unwrap(),
            },
            Frame::Stats {
                rows: 16,
                stats: stats.clone(),
            },
            Frame::Done { rows: 64, stats },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The catalogue value for "123456789" under CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_through_a_pipe() {
        let mut pipe = Vec::new();
        let frames = sample_frames();
        for frame in &frames {
            write_frame(&mut pipe, frame).unwrap();
        }
        let mut cursor = io::Cursor::new(pipe);
        for frame in &frames {
            let read = read_frame(&mut cursor).unwrap().expect("frame present");
            assert_eq!(&read, frame);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        // Corrupting any single bit of an encoded frame must surface
        // as *some* protocol error — never a silently different frame.
        let mut pipe = Vec::new();
        write_frame(&mut pipe, &sample_frames()[1]).unwrap();
        for byte in 0..pipe.len() {
            for bit in 0..8 {
                let mut corrupt = pipe.clone();
                corrupt[byte] ^= 1 << bit;
                let mut cursor = io::Cursor::new(corrupt);
                match read_frame(&mut cursor) {
                    Err(_) => {}
                    // A flipped length-prefix bit can make the prefix
                    // claim a longer frame; the remaining bytes then
                    // fail as a torn frame (Err) — but a *shorter*
                    // claimed length must still fail the CRC.
                    Ok(Some(frame)) => {
                        panic!("bit {bit} of byte {byte} went undetected: {frame:?}")
                    }
                    Ok(None) => panic!("bit {bit} of byte {byte} read as clean EOF"),
                }
            }
        }
    }

    #[test]
    fn truncated_streams_error_not_hang() {
        let mut pipe = Vec::new();
        write_frame(&mut pipe, &sample_frames()[0]).unwrap();
        for len in 1..pipe.len() {
            let mut cursor = io::Cursor::new(pipe[..len].to_vec());
            assert!(
                read_frame(&mut cursor).is_err(),
                "{len}-byte prefix of a frame must be a torn-frame error"
            );
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut body = Vec::new();
        MAGIC.encode(&mut body);
        (VERSION + 1).encode(&mut body);
        sample_handshake().scenario.encode(&mut body);
        assert!(matches!(
            decode_exact::<Handshake>(&body),
            Err(DecodeError::Invalid {
                what: "protocol version mismatch"
            })
        ));

        let mut body = Vec::new();
        0xDEAD_BEEFu32.encode(&mut body);
        assert!(matches!(
            decode_exact::<Handshake>(&body),
            Err(DecodeError::Invalid {
                what: "handshake magic mismatch"
            })
        ));
    }

    #[test]
    fn oversize_and_zero_length_prefixes_are_rejected() {
        let mut pipe = (MAX_FRAME + 1).to_le_bytes().to_vec();
        pipe.extend_from_slice(&[0; 16]);
        assert!(matches!(
            read_frame(&mut io::Cursor::new(pipe)),
            Err(ProtocolError::Oversize { .. })
        ));
        let pipe = 0u32.to_le_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut io::Cursor::new(pipe)),
            Err(ProtocolError::Oversize { len: 0 })
        ));
    }
}

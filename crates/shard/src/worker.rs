//! The shard worker: runs one seed range and streams rows home.
//!
//! A worker process is the executable side of
//! [`Frame::Handshake`](crate::protocol::Frame): it reads exactly one
//! handshake from stdin, rebuilds the [`Campaign`] from the shipped
//! [`Scenario`], executes its trial range through
//! [`Campaign::run_range_streamed`], and streams every trial's CSV
//! row back as a [`Frame::TrialRow`](crate::protocol::Frame) through
//! a [`RemoteSink`] — the remote cousin of `certify_analysis`'s
//! `CsvSink`. Every `stats_every` rows it snapshots its online
//! [`CampaignStats`] into a `Stats` frame; a final `Done` frame
//! carries the authoritative shard stats.
//!
//! Failure is loud by design: if any frame write fails (broken pipe,
//! full disk, dying coordinator) the sink *latches* the error, the
//! remaining trials are skipped, no `Done` frame is ever sent, and
//! the worker exits non-zero — the coordinator sees a dead shard, not
//! a silently truncated one.

use crate::protocol::{read_frame, write_frame, Frame, Handshake};
use certify_analysis::export::trial_to_csv_row;
use certify_core::{
    Campaign, CampaignStats, ConformanceMonitor, TraceDump, TrialResult, TrialSink,
};
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Exit code for a malformed, missing or version-skewed handshake.
pub const EXIT_BAD_HANDSHAKE: i32 = 2;
/// Exit code for a failed result stream (a `TrialSink` write error).
pub const EXIT_STREAM_FAILED: i32 = 3;

/// Why a worker run failed.
#[derive(Debug)]
pub enum WorkerError {
    /// The handshake was missing, malformed, or the wrong version.
    Handshake(String),
    /// Streaming results back failed; the shard's output is
    /// incomplete and the worker must die non-zero.
    Stream(String),
}

impl WorkerError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            WorkerError::Handshake(_) => EXIT_BAD_HANDSHAKE,
            WorkerError::Stream(_) => EXIT_STREAM_FAILED,
        }
    }
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Handshake(e) => write!(f, "handshake failed: {e}"),
            WorkerError::Stream(e) => write!(f, "result stream failed: {e}"),
        }
    }
}

/// A [`TrialSink`] that frames each delivered trial's CSV row over a
/// byte pipe — the worker-process side of a sharded campaign.
///
/// The first write error is latched: later deliveries are dropped
/// (the campaign engine finishes its range undisturbed) and
/// [`RemoteSink::latched_error`] surfaces the failure so the worker
/// can exit non-zero instead of reporting a truncated shard as done.
#[derive(Debug)]
pub struct RemoteSink<W: Write> {
    out: W,
    /// Row scratch buffer, reused across trials.
    row: String,
    rows: u64,
    stats: CampaignStats,
    stats_every: u64,
    error: Option<io::Error>,
}

impl<W: Write> RemoteSink<W> {
    /// A sink framing rows into `out`, snapshotting stats every
    /// `stats_every` rows (0 = never).
    pub fn new(out: W, scenario_name: impl Into<String>, stats_every: u64) -> RemoteSink<W> {
        RemoteSink {
            out,
            row: String::new(),
            rows: 0,
            stats: CampaignStats::new(scenario_name),
            stats_every,
            error: None,
        }
    }

    /// Rows framed so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The stats folded so far (identical to what the campaign engine
    /// returns for the same deliveries).
    pub fn stats(&self) -> &CampaignStats {
        &self.stats
    }

    /// The first write error, if any frame failed.
    pub fn latched_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Sends the final `Done` frame and flushes. Errors if any
    /// earlier write was latched, so a truncated stream can never end
    /// in a clean shutdown frame.
    pub fn finish(mut self) -> io::Result<()> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        write_frame(
            &mut self.out,
            &Frame::Done {
                rows: self.rows,
                stats: self.stats.clone(),
            },
        )?;
        self.out.flush()
    }
}

impl<W: Write> TrialSink for RemoteSink<W> {
    fn accept(&mut self, seq: usize, trial: TrialResult) {
        if self.error.is_some() {
            return;
        }
        self.stats.record(&trial);
        self.row.clear();
        trial_to_csv_row(&trial, &mut self.row);
        let frame = Frame::TrialRow {
            seq: seq as u64,
            row: self.row.as_bytes().to_vec(),
        };
        if let Err(e) = write_frame(&mut self.out, &frame) {
            self.error = Some(e);
            return;
        }
        self.rows += 1;
        if self.stats_every > 0 && self.rows.is_multiple_of(self.stats_every) {
            let frame = Frame::Stats {
                rows: self.rows,
                stats: self.stats.clone(),
            };
            if let Err(e) = write_frame(&mut self.out, &frame) {
                self.error = Some(e);
            }
        }
    }

    fn accept_dump(&mut self, seq: usize, dump: TraceDump) {
        if self.error.is_some() {
            return;
        }
        let frame = Frame::TraceDump {
            seq: seq as u64,
            dump,
        };
        if let Err(e) = write_frame(&mut self.out, &frame) {
            self.error = Some(e);
        }
    }
}

/// Runs the worker conversation over the given pipes: one handshake
/// in, the shard's rows + stats out. This is the whole body of the
/// `shard_worker` binary, factored out so tests can drive it over
/// in-memory pipes.
pub fn run_worker<R: Read, W: Write>(mut input: R, output: W) -> Result<(), WorkerError> {
    let handshake = match read_frame(&mut input) {
        Ok(Some(Frame::Handshake(handshake))) => handshake,
        Ok(Some(frame)) => {
            return Err(WorkerError::Handshake(format!(
                "expected a handshake, got a {} frame",
                frame.name()
            )))
        }
        Ok(None) => {
            return Err(WorkerError::Handshake(
                "stream closed before a handshake arrived".into(),
            ))
        }
        Err(e) => return Err(WorkerError::Handshake(e.to_string())),
    };
    run_handshake(&handshake, output)
}

/// Executes an already-parsed handshake. Factored out for tests that
/// want to skip the framed-stdin leg.
pub fn run_handshake<W: Write>(handshake: &Handshake, output: W) -> Result<(), WorkerError> {
    let Handshake {
        scenario,
        base_seed,
        start_trial,
        len,
        stats_every,
        certificate_fingerprint,
        trace,
    } = handshake;
    let (start, len) = match (usize::try_from(*start_trial), usize::try_from(*len)) {
        (Ok(start), Ok(len)) if start.checked_add(len).is_some() => (start, len),
        _ => {
            return Err(WorkerError::Handshake(
                "trial range does not fit this platform's usize".into(),
            ))
        }
    };
    // The coordinator lints before spawning, but a worker can be
    // handed a handshake by anything speaking the protocol — re-check
    // so a statically broken scenario dies at the handshake (exit 2),
    // not as a silently meaningless shard.
    let diagnostics = certify_lint::lint_scenario(scenario);
    if certify_lint::has_errors(&diagnostics) {
        let rendered: Vec<String> = diagnostics.iter().map(|d| d.to_string()).collect();
        return Err(WorkerError::Handshake(format!(
            "scenario failed static analysis: {}",
            rendered.join("; ")
        )));
    }
    // Re-derive the pre-flight certificate from the shipped scenario
    // and check it against the coordinator's fingerprint: a mismatch
    // means the two processes disagree on the abstract interpretation
    // (version skew, or a tampered handshake) and nothing the worker
    // would stream could be trusted against the coordinator's
    // certificate.
    let (certificate, cert_diagnostics) = certify_lint::certify_scenario(scenario);
    if certify_lint::has_errors(&cert_diagnostics) {
        let rendered: Vec<String> = cert_diagnostics.iter().map(|d| d.to_string()).collect();
        return Err(WorkerError::Handshake(format!(
            "scenario failed certification: {}",
            rendered.join("; ")
        )));
    }
    let fingerprint = certificate.fingerprint();
    if fingerprint != *certificate_fingerprint {
        return Err(WorkerError::Handshake(format!(
            "certificate fingerprint mismatch: coordinator sent {:#018x}, worker derived \
             {fingerprint:#018x}",
            certificate_fingerprint
        )));
    }

    let mut campaign = Campaign::new(scenario.clone(), start + len, *base_seed);
    if let Some(config) = trace {
        campaign = campaign.with_trace(config.clone());
    }
    let sink = RemoteSink::new(output, scenario.name.clone(), *stats_every);
    // Every streamed trial is checked against the certificate; a
    // violation is a broken soundness contract, and the shard must
    // die loudly rather than report certified-looking rows.
    let mut monitor = ConformanceMonitor::new(Arc::new(certificate), sink);
    let stats = campaign.run_range_streamed(start, len, &mut monitor);
    let violations_total = monitor.violations_total();
    let rendered: Vec<String> = monitor.violations().iter().map(|v| v.to_string()).collect();
    let sink = monitor.into_inner();
    // A latched sink stops folding, so the comparison only holds on
    // the clean path.
    debug_assert!(
        sink.latched_error().is_some() || stats == *sink.stats(),
        "engine and sink folded different stats"
    );
    if violations_total > 0 {
        // No `Done` frame: the coordinator must see a dead shard, not
        // a certified-clean one.
        return Err(WorkerError::Stream(format!(
            "{violations_total} conformance violation(s) against certificate \
             {fingerprint:#018x}: {}",
            rendered.join("; ")
        )));
    }
    sink.finish()
        .map_err(|e| WorkerError::Stream(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MAGIC;
    use certify_core::codec::encode_to_vec;
    use certify_core::{NullSink, Scenario, Wire};

    fn handshake(trials: u64, start: u64, len: u64) -> Handshake {
        let _ = trials;
        let scenario = Scenario::e1_root_high();
        let (certificate, _) = certify_lint::certify_scenario(&scenario);
        Handshake {
            scenario,
            base_seed: 7,
            start_trial: start,
            len,
            stats_every: 2,
            certificate_fingerprint: certificate.fingerprint(),
            trace: None,
        }
    }

    fn frames_from(pipe: &[u8]) -> Vec<Frame> {
        let mut cursor = io::Cursor::new(pipe);
        let mut frames = Vec::new();
        while let Some(frame) = read_frame(&mut cursor).expect("valid stream") {
            frames.push(frame);
        }
        frames
    }

    #[test]
    fn worker_streams_rows_stats_and_done() {
        let mut input = Vec::new();
        write_frame(&mut input, &Frame::Handshake(handshake(6, 2, 3))).unwrap();
        let mut output = Vec::new();
        run_worker(io::Cursor::new(input), &mut output).expect("worker runs");

        let frames = frames_from(&output);
        // 3 rows, one stats snapshot at row 2, one done.
        let rows: Vec<u64> = frames
            .iter()
            .filter_map(|f| match f {
                Frame::TrialRow { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(rows, vec![2, 3, 4], "global sequence numbers, in order");
        assert!(frames
            .iter()
            .any(|f| matches!(f, Frame::Stats { rows: 2, .. })));
        let Some(Frame::Done { rows, stats }) = frames.last() else {
            panic!("stream must end with a done frame");
        };
        assert_eq!(*rows, 3);
        assert_eq!(stats.trials, 3);

        // The shard's stats equal an in-process run of the same range.
        let campaign = Campaign::new(Scenario::e1_root_high(), 5, 7);
        let expected = campaign.run_range_streamed(2, 3, &mut NullSink);
        assert_eq!(stats, &expected);
    }

    #[test]
    fn missing_handshake_is_a_handshake_error() {
        let err = run_worker(io::Cursor::new(Vec::new()), Vec::new()).unwrap_err();
        assert!(matches!(err, WorkerError::Handshake(_)));
        assert_eq!(err.exit_code(), EXIT_BAD_HANDSHAKE);
    }

    #[test]
    fn wrong_first_frame_is_a_handshake_error() {
        let mut input = Vec::new();
        write_frame(
            &mut input,
            &Frame::TrialRow {
                seq: 0,
                row: vec![],
            },
        )
        .unwrap();
        let err = run_worker(io::Cursor::new(input), Vec::new()).unwrap_err();
        assert!(matches!(err, WorkerError::Handshake(_)), "{err}");
    }

    #[test]
    fn version_skew_is_a_handshake_error() {
        // A frame whose payload claims a future protocol version.
        let mut body = vec![1u8]; // KIND_HANDSHAKE
        MAGIC.encode(&mut body);
        (crate::protocol::VERSION + 1).encode(&mut body);
        handshake(1, 0, 1).scenario.encode(&mut body);
        let mut input = (body.len() as u32).to_le_bytes().to_vec();
        input.extend_from_slice(&body);
        input.extend_from_slice(&crate::protocol::crc32(&body).to_le_bytes());

        let err = run_worker(io::Cursor::new(input), Vec::new()).unwrap_err();
        assert!(
            err.to_string().contains("version"),
            "error must name the version skew: {err}"
        );
        assert_eq!(err.exit_code(), EXIT_BAD_HANDSHAKE);
    }

    #[test]
    fn write_failure_latches_and_fails_the_worker() {
        /// Accepts `budget` bytes, then fails every write.
        struct Failing {
            budget: usize,
        }
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::other("pipe gone"));
                }
                let n = buf.len().min(self.budget);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let err = run_handshake(&handshake(4, 0, 4), Failing { budget: 64 }).unwrap_err();
        assert!(matches!(err, WorkerError::Stream(_)), "{err}");
        assert_eq!(err.exit_code(), EXIT_STREAM_FAILED);
    }

    #[test]
    fn latched_sink_never_emits_done() {
        struct FailAll;
        impl Write for FailAll {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("down"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = RemoteSink::new(FailAll, "x", 0);
        let campaign = Campaign::new(Scenario::golden(400), 2, 1);
        campaign.run_streamed(&mut sink);
        assert!(sink.latched_error().is_some());
        assert_eq!(sink.rows(), 0);
        assert!(sink.finish().is_err(), "finish must surface the latch");
    }

    #[test]
    fn statically_broken_scenario_is_a_handshake_error() {
        use certify_core::spec::InjectionWindow;
        let mut handshake = handshake(2, 0, 2);
        // Every window opens after the horizon: window-all-dead, an
        // error-severity lint finding.
        handshake.scenario.spec.as_mut().unwrap().windows = vec![InjectionWindow::new(
            handshake.scenario.steps + 1,
            handshake.scenario.steps + 100,
        )];
        let mut output = Vec::new();
        let err = run_handshake(&handshake, &mut output).unwrap_err();
        assert!(matches!(err, WorkerError::Handshake(_)), "{err}");
        assert_eq!(err.exit_code(), EXIT_BAD_HANDSHAKE);
        assert!(
            err.to_string().contains("window-all-dead"),
            "error must carry the diagnostic code: {err}"
        );
        assert!(output.is_empty(), "no frames before the refusal");
    }

    #[test]
    fn certificate_fingerprint_mismatch_is_a_handshake_error() {
        let mut handshake = handshake(2, 0, 2);
        handshake.certificate_fingerprint ^= 1;
        let mut output = Vec::new();
        let err = run_handshake(&handshake, &mut output).unwrap_err();
        assert!(matches!(err, WorkerError::Handshake(_)), "{err}");
        assert_eq!(err.exit_code(), EXIT_BAD_HANDSHAKE);
        assert!(
            err.to_string().contains("fingerprint mismatch"),
            "error must name the mismatch: {err}"
        );
        assert!(output.is_empty(), "no frames before the refusal");
    }

    #[test]
    fn zero_budget_scenario_fails_certification_at_the_handshake() {
        use certify_core::spec::InjectionWindow;
        let mut handshake = handshake(2, 0, 2);
        // A 2-step window cannot accumulate the 50 calls one fire
        // needs: lint-clean, but certifiably pointless.
        handshake.scenario.spec.as_mut().unwrap().windows = vec![InjectionWindow::new(0, 2)];
        let (certificate, _) = certify_lint::certify_scenario(&handshake.scenario);
        handshake.certificate_fingerprint = certificate.fingerprint();
        let err = run_handshake(&handshake, Vec::new()).unwrap_err();
        assert!(matches!(err, WorkerError::Handshake(_)), "{err}");
        assert_eq!(err.exit_code(), EXIT_BAD_HANDSHAKE);
        assert!(
            err.to_string().contains("cert-zero-budget"),
            "error must carry the diagnostic code: {err}"
        );
    }

    #[test]
    fn oversized_range_is_rejected_cleanly() {
        let mut handshake = handshake(0, u64::MAX, 2);
        handshake.start_trial = u64::MAX;
        let err = run_handshake(&handshake, Vec::new()).unwrap_err();
        assert!(matches!(err, WorkerError::Handshake(_)));
        let _ = encode_to_vec(&handshake); // the wire form itself is fine
    }
}

//! Property tests of the shard wire protocol and the core codec.
//!
//! The coordinator trusts nothing a worker sends, and the worker
//! trusts nothing a coordinator sends — so encode/decode must be an
//! exact inverse pair on arbitrary values, and arbitrary corruption
//! must surface as an error, never as a different-but-valid value.

use certify_core::codec::{decode_exact, encode_to_vec};
use certify_core::spec::{InjectionSpec, InjectionWindow, MemorySpec};
use certify_core::{
    Campaign, FaultModel, MemFaultModel, MemRegionKind, MemTarget, NullSink, Scenario, TraceConfig,
};
use certify_shard::{crc32, read_frame, write_frame, Frame, Handshake};
use proptest::collection;
use proptest::prelude::*;
use std::io::Cursor;

/// Deterministically varies an `InjectionSpec` across its knobs.
fn spec_variant(rate: u64, windows: Vec<(u64, u64)>, knobs: u8) -> InjectionSpec {
    let mut spec = match knobs % 4 {
        0 => InjectionSpec::e1_root_high(),
        1 => InjectionSpec::e2_nonroot_high(),
        2 => InjectionSpec::e2_boot_window(),
        _ => InjectionSpec::e3_nonroot_trap_medium(),
    }
    .with_rate(rate)
    .with_windows(
        windows
            .iter()
            .map(|&(start, span)| InjectionWindow::new(start, start + span.max(1))),
    );
    if knobs & 0x10 != 0 {
        spec = spec.with_phase_jitter();
    }
    if knobs & 0x20 != 0 {
        spec = spec.with_max_injections(u64::from(knobs));
    }
    if knobs & 0x40 != 0 {
        spec = spec.with_time_trigger(rate + 1);
    }
    if knobs & 0x80 != 0 {
        spec = spec.with_model(FaultModel::multi_register_flip());
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Injection specs round-trip through the codec whatever knob
    /// combination is set.
    #[test]
    fn injection_specs_round_trip(
        rate in 1u64..500,
        windows in collection::vec((0u64..5000, 1u64..800), 0..4),
        knobs in any::<u8>(),
    ) {
        let spec = spec_variant(rate, windows, knobs);
        prop_assert_eq!(decode_exact::<InjectionSpec>(&encode_to_vec(&spec)).unwrap(), spec);
    }

    /// Memory specs (model + target regions + cadence) round-trip.
    #[test]
    fn memory_specs_round_trip(
        rate in 1u64..500,
        model_tag in 0u8..6,
        stuck in any::<u32>(),
        words in 1u32..64,
        regions in collection::vec(0u8..5, 1..6),
        custom in any::<bool>(),
    ) {
        let model = match model_tag {
            0 => MemFaultModel::SingleBitFlip,
            1 => MemFaultModel::DoubleBitFlip,
            2 => MemFaultModel::WordStuckAt { value: stuck },
            3 => MemFaultModel::PageBurst { words },
            4 => MemFaultModel::DescriptorInvalidate,
            _ => MemFaultModel::CommStateCorrupt,
        };
        let mut kinds: Vec<MemRegionKind> =
            regions.iter().map(|&r| MemRegionKind::ALL[r as usize]).collect();
        if custom {
            kinds.push(MemRegionKind::Custom { base: 0x4000_0000, size: 0x1000 });
        }
        let spec = MemorySpec::e6_memory(model, MemTarget::new(kinds)).with_rate(rate);
        prop_assert_eq!(decode_exact::<MemorySpec>(&encode_to_vec(&spec)).unwrap(), spec);
    }

    /// Trial-row frames round-trip through a pipe with arbitrary row
    /// bytes (CSV rows are a special case).
    #[test]
    fn trial_row_frames_round_trip(
        seq in any::<u64>(),
        row in collection::vec(any::<u8>(), 0..300),
    ) {
        let frame = Frame::TrialRow { seq, row };
        let mut pipe = Vec::new();
        write_frame(&mut pipe, &frame).unwrap();
        let read = read_frame(&mut Cursor::new(pipe)).unwrap().unwrap();
        prop_assert_eq!(read, frame);
    }

    /// Handshakes carrying every scenario preset round-trip, and the
    /// rebuilt scenario runs the *same trials*: a worker created from
    /// the wire form produces the same stats as the original.
    #[test]
    fn handshakes_rebuild_identical_scenarios(
        preset in 0u8..5,
        base_seed in any::<u64>(),
        start in 0u64..1000,
        len in 1u64..50,
    ) {
        let scenario = match preset {
            0 => Scenario::e1_root_high(),
            1 => Scenario::e2_boot_window(),
            2 => Scenario::e3_fig3(),
            3 => Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()),
            _ => Scenario::e7_mixed(),
        };
        let handshake = Handshake {
            certificate_fingerprint: certify_lint::certify_scenario(&scenario).0.fingerprint(),
            scenario,
            base_seed,
            start_trial: start,
            len,
            stats_every: 0,
            trace: (preset % 2 == 0).then(|| TraceConfig::new().with_capacity(1 + len as usize)),
        };
        let frame = Frame::Handshake(handshake.clone());
        let mut pipe = Vec::new();
        write_frame(&mut pipe, &frame).unwrap();
        let Some(Frame::Handshake(read)) = read_frame(&mut Cursor::new(pipe)).unwrap() else {
            return Err(TestCaseError::fail(String::from("wrong frame kind")));
        };
        prop_assert_eq!(&read, &handshake);

        // Semantic identity, not just structural: one trial of the
        // rebuilt scenario behaves exactly like the original's.
        let a = Campaign::new(handshake.scenario, 1, base_seed).run_streamed(&mut NullSink);
        let b = Campaign::new(read.scenario, 1, base_seed).run_streamed(&mut NullSink);
        prop_assert_eq!(a, b);
    }

    /// Flipping any byte of a framed message can never yield a
    /// *different valid frame*: the CRC (or the decoder) catches it.
    #[test]
    fn corrupted_frames_never_decode_to_a_different_frame(
        seq in any::<u64>(),
        row in collection::vec(any::<u8>(), 1..120),
        corrupt_at_frac in 0.0f64..1.0,
        xor in 1u8..255,
    ) {
        let frame = Frame::TrialRow { seq, row };
        let mut pipe = Vec::new();
        write_frame(&mut pipe, &frame).unwrap();
        let at = ((pipe.len() - 1) as f64 * corrupt_at_frac) as usize;
        pipe[at] ^= xor;
        match read_frame(&mut Cursor::new(pipe)) {
            Err(_) | Ok(None) => {}
            Ok(Some(read)) => prop_assert_eq!(read, frame, "corruption changed the frame"),
        }
    }

    /// crc32 differs on any single-bit difference of short inputs
    /// (CRC-32 guarantees Hamming distance > 1 at these lengths).
    #[test]
    fn crc_detects_single_bit_flips(
        bytes in collection::vec(any::<u8>(), 1..64),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut flipped = bytes.clone();
        let at = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        flipped[at] ^= 1 << bit;
        prop_assert_ne!(crc32(&bytes), crc32(&flipped));
    }
}

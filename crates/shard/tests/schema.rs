//! Golden fingerprints for the shard wire protocol's framed encodings.
//!
//! `certify_lint`'s schema auditor pins every `certify_core::codec`
//! wire type, but the *frame* layer — kind bytes, length prefix, CRC
//! trailer, handshake magic/version — lives in this crate and would
//! create a dependency cycle if pinned there. So the frame encodings
//! are pinned here instead, with the same FNV-1a fingerprint helper:
//! any change to the frame layout or the handshake's field order
//! breaks these constants and must come with a deliberate `VERSION`
//! bump.

use certify_core::{CampaignStats, Outcome, Scenario, TraceConfig, TraceDump};
use certify_lint::fingerprint;
use certify_obs::trace::{TraceEvent, TraceKind, NO_CPU};
use certify_shard::{write_frame, Frame, Handshake};

/// Frames a value exactly as the wire sees it: `[len][kind|payload][crc]`.
fn framed(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, frame).expect("in-memory frame write");
    out
}

fn pinned_frames() -> Vec<(&'static str, Vec<u8>)> {
    let stats = CampaignStats::new("pin");
    let handshake = |trace: Option<TraceConfig>| {
        framed(&Frame::Handshake(Handshake {
            scenario: Scenario::e3_fig3(),
            base_seed: 7,
            start_trial: 2,
            len: 3,
            stats_every: 4,
            certificate_fingerprint: 6,
            trace,
        }))
    };
    vec![
        ("handshake-e3", handshake(None)),
        (
            "handshake-e3-traced",
            handshake(Some(TraceConfig::default())),
        ),
        (
            "trial-row",
            framed(&Frame::TrialRow {
                seq: 5,
                row: b"pinned,row,bytes\n".to_vec(),
            }),
        ),
        (
            "trace-dump",
            framed(&Frame::TraceDump {
                seq: 5,
                dump: TraceDump {
                    seed: 9,
                    scenario: "pin".into(),
                    outcome: Outcome::Correct,
                    total: 3,
                    dropped: 1,
                    events: vec![
                        TraceEvent {
                            step: 1,
                            cpu: 0,
                            kind: TraceKind::HandlerEntry,
                            arg_a: 2,
                            arg_b: 3,
                        },
                        TraceEvent {
                            step: 2,
                            cpu: NO_CPU,
                            kind: TraceKind::ClassifyVerdict,
                            arg_a: 6,
                            arg_b: 0,
                        },
                    ],
                },
            }),
        ),
        (
            "stats",
            framed(&Frame::Stats {
                rows: 2,
                stats: stats.clone(),
            }),
        ),
        ("done", framed(&Frame::Done { rows: 3, stats })),
    ]
}

/// `(name, framed length, fnv1a64)` — regenerate deliberately (the
/// failure message prints current values) alongside a protocol
/// `VERSION` bump.
const GOLDEN: &[(&str, usize, u64)] = &[
    ("handshake-e3", 215, 0x9242fb51c267c02c),
    ("handshake-e3-traced", 237, 0xdb9a60ac6b673740),
    ("trial-row", 42, 0x654dd71078400e11),
    ("trace-dump", 119, 0x649a22eaa985cd9d),
    ("stats", 148, 0xd0e28bfdd1519951),
    ("done", 148, 0xbf44227906e2af08),
];

#[test]
fn frame_encodings_match_their_golden_fingerprints() {
    let current = pinned_frames();
    assert_eq!(current.len(), GOLDEN.len());
    for ((name, bytes), &(golden_name, golden_len, golden_fp)) in current.iter().zip(GOLDEN) {
        assert_eq!(*name, golden_name);
        assert_eq!(
            (bytes.len(), fingerprint(bytes)),
            (golden_len, golden_fp),
            "frame `{name}` encoding drifted: current is (\"{name}\", {}, {:#018x}) — \
             a wire-protocol break needing a VERSION bump",
            bytes.len(),
            fingerprint(bytes),
        );
    }
}

#[test]
fn frame_kind_bytes_are_stable() {
    // Byte 4 (after the u32 length prefix) is the kind tag.
    let kinds: Vec<u8> = pinned_frames().iter().map(|(_, bytes)| bytes[4]).collect();
    assert_eq!(kinds, vec![1, 1, 2, 5, 3, 4]);
}

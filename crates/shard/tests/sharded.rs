//! End-to-end tests of multi-process sharded campaigns.
//!
//! Every test here spawns real `shard_worker` OS processes (the
//! `CARGO_BIN_EXE_shard_worker` binary Cargo builds alongside this
//! suite) and asserts the coordinator's merged output — stats *and*
//! CSV bytes — is identical to a single-process
//! `Campaign::run_streamed`, the invariant the whole tier rests on.
//! The recovery tests SIGKILL a worker mid-stream and hand a
//! protocol-violating executable to the coordinator; both must leave
//! the output untouched or fail loudly, never silently truncate.

use certify_analysis::export::CsvSink;
use certify_core::memfault::{MemFaultModel, MemTarget};
use certify_core::{Campaign, CampaignStats, NullSink, Scenario};
use certify_shard::{partition, run_sharded, ShardError, ShardOptions};
use std::path::PathBuf;

fn worker() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_shard_worker"))
}

fn options(shards: usize) -> ShardOptions {
    ShardOptions::new(shards).with_worker(worker())
}

/// Single-process reference output: streamed stats + CSV bytes.
fn reference(campaign: &Campaign) -> (CampaignStats, String) {
    let mut sink = CsvSink::in_memory();
    let stats = campaign.run_streamed(&mut sink);
    (stats, sink.into_csv())
}

/// Runs `campaign` sharded and asserts stats and CSV bytes match the
/// single-process reference exactly. Returns the run for extra
/// assertions.
fn assert_sharded_identical(campaign: &Campaign, opts: &ShardOptions) -> certify_shard::ShardedRun {
    let (expected_stats, expected_csv) = reference(campaign);
    let mut csv = Vec::new();
    let run = run_sharded(campaign, opts, Some(&mut csv)).expect("sharded run succeeds");
    assert_eq!(
        run.stats, expected_stats,
        "sharded stats diverged from single-process run_streamed"
    );
    assert_eq!(
        String::from_utf8(csv).unwrap(),
        expected_csv,
        "sharded CSV bytes diverged from single-process CsvSink"
    );
    assert_eq!(run.rows, campaign.trials() as u64);
    run
}

#[test]
fn partition_covers_the_trial_space_exactly() {
    assert_eq!(partition(10, 3), vec![(0, 3), (3, 3), (6, 4)]);
    assert_eq!(partition(4, 4), vec![(0, 1), (1, 1), (2, 1), (3, 1)]);
    assert_eq!(partition(3, 8).len(), 3, "shards clamp to trials");
    assert_eq!(partition(5, 0), vec![(0, 5)], "zero shards clamp to one");
    for (trials, shards) in [(1, 1), (7, 2), (100, 7), (13, 13)] {
        let ranges = partition(trials, shards);
        let mut next = 0;
        for (start, len) in ranges {
            assert_eq!(start, next, "ranges must be contiguous");
            assert!(len > 0, "no empty shard");
            next = start + len;
        }
        assert_eq!(next, trials, "ranges must cover 0..trials");
    }
}

#[test]
fn sharded_e3_matches_single_process() {
    let campaign = Campaign::new(Scenario::e3_fig3(), 240, 0xD5_2022);
    let run = assert_sharded_identical(&campaign, &options(3));
    assert_eq!(run.worker_failures, 0);
    assert_eq!(run.shard_ranges, vec![(0, 80), (80, 80), (160, 80)]);
}

#[test]
fn sharded_memory_campaign_ships_mem_specs_over_the_wire() {
    // E6 exercises the MemorySpec/MemTarget leg of the handshake
    // codec and the rtos_heartbeat flag end to end.
    let campaign = Campaign::new(
        Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()),
        48,
        0xE6,
    );
    let run = assert_sharded_identical(&campaign, &options(2));
    assert!(
        run.stats.mem_injected_trials > 0,
        "the sharded campaign must actually inject"
    );
}

#[test]
fn killed_worker_is_recovered_byte_identically() {
    // SIGKILL shard 1's worker after 40 rows; the coordinator must
    // re-run its range on a fresh worker and still produce output
    // byte-identical to the single-process run.
    let campaign = Campaign::new(Scenario::e3_fig3(), 240, 77);
    let opts = options(2).with_sabotage(1, 40);
    let run = assert_sharded_identical(&campaign, &opts);
    assert!(
        run.worker_failures >= 1,
        "the sabotaged worker must register as a failure"
    );
}

#[test]
fn killing_the_first_shard_mid_delivery_also_recovers() {
    // Shard 0's rows stream straight to the output while it is being
    // killed — recovery must skip the already-delivered prefix, not
    // emit it twice.
    let campaign = Campaign::new(Scenario::e1_root_high(), 120, 5);
    let opts = options(2).with_sabotage(0, 25);
    let run = assert_sharded_identical(&campaign, &opts);
    assert!(run.worker_failures >= 1);
}

#[test]
fn stats_only_runs_need_no_csv_output() {
    let campaign = Campaign::new(Scenario::e1_root_high(), 60, 11);
    let expected = campaign.run_streamed(&mut NullSink);
    let run = run_sharded(&campaign, &options(3), None).expect("sharded run succeeds");
    assert_eq!(run.stats, expected);
}

#[test]
fn more_shards_than_trials_clamps() {
    let campaign = Campaign::new(Scenario::e1_root_high(), 3, 9);
    let run = assert_sharded_identical(&campaign, &options(16));
    assert_eq!(run.shard_ranges.len(), 3);
}

#[test]
fn empty_campaign_is_a_no_op() {
    let campaign = Campaign::new(Scenario::e1_root_high(), 0, 9);
    let mut csv = Vec::new();
    let run = run_sharded(&campaign, &options(2), Some(&mut csv)).expect("empty run succeeds");
    assert_eq!(run.rows, 0);
    assert_eq!(
        String::from_utf8(csv).unwrap(),
        certify_analysis::export::CSV_HEADER,
        "an empty campaign still writes the header"
    );
}

#[test]
fn protocol_violating_worker_fails_after_retries() {
    // `cat` echoes the handshake back: a syntactically valid frame of
    // the wrong kind. Every attempt sees the violation; the run must
    // fail with the shard's attempt count, not hang or truncate.
    let campaign = Campaign::new(Scenario::e1_root_high(), 8, 3);
    let mut opts = options(1).with_worker("/bin/cat");
    opts.max_attempts = 2;
    match run_sharded(&campaign, &opts, None) {
        Err(ShardError::ShardFailed {
            shard,
            attempts,
            last_error,
        }) => {
            assert_eq!(shard, 0);
            assert_eq!(attempts, 2);
            assert!(
                last_error.contains("handshake"),
                "violation must be named: {last_error}"
            );
        }
        other => panic!("expected ShardFailed, got {other:?}"),
    }
}

#[test]
fn statically_broken_scenario_is_refused_before_spawning() {
    // A spec whose only window opens after the horizon lints as the
    // error-severity `window-all-dead`: the coordinator must refuse
    // the campaign outright. No worker binary is configured — the
    // refusal has to happen before worker resolution.
    use certify_core::spec::InjectionWindow;
    let mut scenario = Scenario::e3_fig3();
    let steps = scenario.steps;
    scenario.spec.as_mut().unwrap().windows = vec![InjectionWindow::new(steps + 1, steps + 100)];
    let campaign = Campaign::new(scenario, 8, 3);
    match run_sharded(&campaign, &ShardOptions::new(2), None) {
        Err(ShardError::BadScenario(diags)) => {
            assert!(
                diags
                    .iter()
                    .any(|d| d.code == certify_lint::Code::WindowAllDead),
                "diagnostics must name the dead window: {diags:?}"
            );
        }
        other => panic!("expected BadScenario, got {other:?}"),
    }
}

/// Runs every built-in scenario sharded across real worker processes.
/// Workers enforce the scenario's certificate on every trial through a
/// `ConformanceMonitor`: a single violation suppresses the Done frame
/// and kills the worker, so `worker_failures == 0` across the sweep is
/// an end-to-end soundness proof of the abstract interpreter.
fn assert_sharded_conformance(trials: usize, base_seed: u64) {
    for scenario in certify_lint::builtin_scenarios() {
        let name = scenario.name.clone();
        let campaign = Campaign::new(scenario, trials, base_seed);
        let run = run_sharded(&campaign, &options(2), None)
            .unwrap_or_else(|e| panic!("sharded `{name}` must conform to its certificate: {e:?}"));
        assert_eq!(run.worker_failures, 0, "scenario `{name}`");
        assert_eq!(run.rows, trials as u64, "scenario `{name}`");
    }
}

#[test]
fn sharded_builtins_conform_to_their_certificates() {
    assert_sharded_conformance(6, 0xCE27);
}

/// Full-depth sharded soundness: 500 trials of every built-in
/// scenario through worker processes. CI runs it with
/// `cargo test --release -p certify_shard -- --ignored`.
#[test]
#[ignore = "500-trial sharded sweep; execute in --release (CI does)"]
fn sharded_builtins_conform_to_their_certificates_at_depth() {
    assert_sharded_conformance(500, 0xCE28);
}

#[test]
fn zero_certified_budget_is_refused_before_spawning() {
    // A two-step window on E3's rate-100 cadence certifies to a zero
    // injection budget: the abstract interpreter proves the campaign
    // can never inject, which is the error-severity `cert-zero-budget`.
    // No worker binary is configured — the refusal must come from the
    // coordinator's certify pass, before worker resolution.
    use certify_core::spec::InjectionWindow;
    let mut scenario = Scenario::e3_fig3();
    scenario.spec.as_mut().unwrap().windows = vec![InjectionWindow::new(0, 2)];
    let campaign = Campaign::new(scenario, 8, 3);
    match run_sharded(&campaign, &ShardOptions::new(2), None) {
        Err(ShardError::BadScenario(diags)) => {
            assert!(
                diags
                    .iter()
                    .any(|d| d.code == certify_lint::Code::CertZeroBudget),
                "diagnostics must name the zero budget: {diags:?}"
            );
        }
        other => panic!("expected BadScenario, got {other:?}"),
    }
}

#[test]
fn warning_level_findings_do_not_block_sharded_runs() {
    // max_injections == 0 lints as a warning (`spec-zero-injection-cap`)
    // — suspicious, but the campaign is still runnable.
    let mut scenario = Scenario::e1_root_high();
    scenario.spec.as_mut().unwrap().max_injections = Some(0);
    let campaign = Campaign::new(scenario, 6, 3);
    let run = run_sharded(&campaign, &options(2), None).expect("warnings must not block");
    assert_eq!(run.rows, 6);
}

#[test]
fn missing_worker_binary_is_a_clean_error() {
    let campaign = Campaign::new(Scenario::e1_root_high(), 4, 3);
    let opts = options(1).with_worker("/nonexistent/certify/shard_worker");
    match run_sharded(&campaign, &opts, None) {
        Err(ShardError::ShardFailed { last_error, .. }) => {
            assert!(last_error.contains("spawning"), "{last_error}");
        }
        other => panic!("expected a spawn failure, got {other:?}"),
    }
}

#[test]
fn worker_with_closed_output_pipe_exits_nonzero() {
    // The satellite contract: a TrialSink write failure inside a
    // worker surfaces as a non-zero exit, never a silent truncation.
    use certify_shard::{write_frame, Frame, Handshake};
    use std::process::{Command, Stdio};

    let mut child = Command::new(worker())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn shard_worker");
    {
        let mut stdin = child.stdin.take().expect("piped stdin");
        write_frame(
            &mut stdin,
            &Frame::Handshake(Handshake {
                certificate_fingerprint: certify_lint::certify_scenario(&Scenario::e1_root_high())
                    .0
                    .fingerprint(),
                scenario: Scenario::e1_root_high(),
                base_seed: 1,
                start_trial: 0,
                len: 50,
                stats_every: 4,
                trace: None,
            }),
        )
        .expect("handshake written");
    }
    // Close our end of the worker's stdout: its next flushed row
    // write hits a broken pipe.
    drop(child.stdout.take());
    let status = child.wait().expect("worker exits");
    assert!(!status.success(), "worker must die loudly, got {status}");
    assert_eq!(
        status.code(),
        Some(certify_shard::worker::EXIT_STREAM_FAILED)
    );
}

#[test]
fn sharded_trace_dumps_match_in_process_byte_for_byte() {
    // The tracing contract across process boundaries: a traced sharded
    // run must surface exactly the dumps an in-process run buffers,
    // and each dump's wire encoding must be byte-identical — the dump
    // carries no shard- or transport-specific state.
    use certify_core::codec::encode_to_vec;
    use certify_core::{CollectSink, TraceConfig};

    let scenario = Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6());
    let campaign = Campaign::new(scenario, 64, 0xE6D0).with_trace(TraceConfig::new());

    let mut sink = CollectSink::new();
    campaign.run_streamed(&mut sink);
    let (_, expected) = sink.into_parts();
    assert!(
        !expected.is_empty(),
        "this sweep must produce at least one anomalous dump"
    );

    let dir = std::env::temp_dir().join(format!("certify-trace-dumps-{}", std::process::id()));
    let run = run_sharded(&campaign, &options(2).with_dump_dir(&dir), None)
        .expect("sharded traced run succeeds");

    assert_eq!(run.dumps.len(), expected.len());
    for ((seq_a, a), (seq_b, b)) in expected.iter().zip(&run.dumps) {
        assert_eq!(*seq_a as u64, *seq_b);
        assert_eq!(
            encode_to_vec(a),
            encode_to_vec(b),
            "trial {seq_a} dump drifted across the wire"
        );
    }

    // Persistence: one JSON document per dump, named by global seq.
    for (seq, dump) in &expected {
        let path = dir.join(format!("trace-{seq:08}.json"));
        let body = std::fs::read_to_string(&path).expect("dump file written");
        assert_eq!(body, dump.to_json().render() + "\n");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Full-depth tracing acceptance: 500-trial sweeps of E6 and E7,
/// traced, in-process and sharded. A dump must fire for *exactly* the
/// anomalous trials, and the sharded dumps must be byte-identical to
/// the in-process captures. CI runs it with
/// `cargo test --release -p certify_shard -- --ignored`.
#[test]
#[ignore = "500-trial traced sweeps; execute in --release (CI does)"]
fn traced_sweeps_dump_every_anomaly_at_depth() {
    use certify_core::codec::encode_to_vec;
    use certify_core::{CollectSink, DumpPolicy, TraceConfig};

    for scenario in [
        Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()),
        Scenario::e7_mixed(),
    ] {
        let campaign = Campaign::new(scenario, 500, 0xD5_2022).with_trace(TraceConfig::new());
        let name = campaign.scenario().name.clone();

        let mut sink = CollectSink::new();
        campaign.run_streamed(&mut sink);
        let (trials, dumps) = sink.into_parts();
        let policy = DumpPolicy::anomalies();
        let anomalies: Vec<usize> = trials
            .iter()
            .enumerate()
            .filter(|(_, t)| policy.wants(t.outcome))
            .map(|(i, _)| i)
            .collect();
        assert!(!anomalies.is_empty(), "{name}: sweep produced no anomalies");
        assert_eq!(
            dumps.iter().map(|(seq, _)| *seq).collect::<Vec<_>>(),
            anomalies,
            "{name}: a dump must fire for exactly the anomalous trials"
        );

        let run = run_sharded(&campaign, &options(4), None)
            .unwrap_or_else(|e| panic!("{name}: sharded traced run failed: {e:?}"));
        assert_eq!(run.dumps.len(), dumps.len(), "{name}: sharded dump count");
        for ((seq_a, a), (seq_b, b)) in dumps.iter().zip(&run.dumps) {
            assert_eq!(*seq_a as u64, *seq_b, "{name}: dump order");
            assert_eq!(
                encode_to_vec(a),
                encode_to_vec(b),
                "{name}: trial {seq_a} dump drifted across the wire"
            );
        }
    }
}

#[test]
fn killed_traced_worker_recovers_without_duplicate_dumps() {
    // A SIGKILLed shard re-runs its range; re-sent dumps must dedup to
    // the same set an unsabotaged run produces.
    use certify_core::codec::encode_to_vec;
    use certify_core::TraceConfig;

    let scenario = Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6());
    let campaign = Campaign::new(scenario, 64, 0xE6D0).with_trace(TraceConfig::new());

    let clean = run_sharded(&campaign, &options(2), None).expect("clean traced run");
    let sabotaged = run_sharded(&campaign, &options(2).with_sabotage(1, 10), None)
        .expect("sabotaged traced run recovers");
    assert!(sabotaged.worker_failures >= 1);
    assert_eq!(clean.dumps.len(), sabotaged.dumps.len());
    for ((seq_a, a), (seq_b, b)) in clean.dumps.iter().zip(&sabotaged.dumps) {
        assert_eq!(seq_a, seq_b);
        assert_eq!(encode_to_vec(a), encode_to_vec(b));
    }
}

#[test]
fn observed_sharded_run_emits_progress_and_stays_byte_identical() {
    use certify_obs::{CollectObserver, MonotonicClock};
    use certify_shard::run_sharded_observed;

    let campaign = Campaign::new(Scenario::e3_fig3(), 240, 0xD5_2022);
    let (expected_stats, expected_csv) = reference(&campaign);

    // Small stats_every so each worker reports several times mid-run.
    let mut opts = options(2);
    opts.stats_every = 32;
    let clock = MonotonicClock::new();
    let mut observer = CollectObserver::default();
    let mut csv = Vec::new();
    let run = run_sharded_observed(&campaign, &opts, Some(&mut csv), &clock, &mut observer)
        .expect("observed sharded run succeeds");

    // Observation must not perturb the output.
    assert_eq!(run.stats, expected_stats, "observed stats diverged");
    assert_eq!(
        String::from_utf8(csv).unwrap(),
        expected_csv,
        "observed CSV bytes diverged"
    );

    // Per-shard snapshots carry their shard id; exactly one final
    // campaign-level snapshot closes the stream at 100 %.
    let snapshots = &observer.snapshots;
    assert!(snapshots.len() > 1, "expected mid-run snapshots");
    for (shard, (_, len)) in run.shard_ranges.iter().enumerate() {
        assert!(
            snapshots
                .iter()
                .any(|s| s.source == Some(shard as u32) && s.total == *len as u64),
            "no snapshot from shard {shard}"
        );
    }
    let last = snapshots.last().unwrap();
    assert_eq!(last.source, None, "final snapshot is campaign-level");
    assert_eq!(last.done, 240);
    assert_eq!(last.total, 240);

    // Transport counters: all rows accounted, a clean wire, real time.
    assert_eq!(run.metrics.rows.get(), 240);
    assert!(run.metrics.frames.get() > 0, "frames were counted");
    assert!(run.metrics.frame_bytes.get() > 0, "wire bytes were counted");
    assert_eq!(run.metrics.crc_rejects.get(), 0);
    assert_eq!(run.metrics.retries.get(), 0);
    assert_eq!(run.metrics.wasted_rerun_trials.get(), 0);
    assert!(run.metrics.elapsed_ns.high_water() > 0);
    assert!(run.metrics.rows_per_sec() > 0.0);

    // The merged view is the fold of the per-shard views.
    assert_eq!(run.shard_metrics.len(), 2);
    let folded_rows: u64 = run.shard_metrics.iter().map(|m| m.rows.get()).sum();
    assert_eq!(folded_rows, run.metrics.rows.get());
}

#[test]
fn observed_run_prices_crash_recovery_in_wasted_trials() {
    use certify_obs::{CollectObserver, MonotonicClock};
    use certify_shard::run_sharded_observed;

    let campaign = Campaign::new(Scenario::e3_fig3(), 240, 77);
    let (expected_stats, expected_csv) = reference(&campaign);

    let mut opts = options(2).with_sabotage(1, 40);
    opts.stats_every = 32;
    let clock = MonotonicClock::new();
    let mut observer = CollectObserver::default();
    let mut csv = Vec::new();
    let run = run_sharded_observed(&campaign, &opts, Some(&mut csv), &clock, &mut observer)
        .expect("recovery still succeeds when observed");

    assert_eq!(run.stats, expected_stats);
    assert_eq!(String::from_utf8(csv).unwrap(), expected_csv);
    assert!(run.worker_failures >= 1);

    // The sabotaged attempt's rows are the recovery bill.
    assert!(run.metrics.retries.get() >= 1, "retry must be counted");
    assert!(
        run.metrics.wasted_rerun_trials.get() > 0,
        "killed worker's delivered rows must count as waste"
    );
    // Accepted rows still cover exactly the campaign.
    assert_eq!(run.metrics.rows.get(), 240);
}

/// The acceptance-criteria run: 10 000 E3 trials across multiple OS
/// processes, clean and with a mid-run worker kill, both
/// byte-identical to single-process output. ~10 s in release, far
/// slower in debug — CI runs it with
/// `cargo test --release -p certify_shard -- --ignored`.
#[test]
#[ignore = "10k-trial acceptance run; execute in --release (CI does)"]
fn sharded_10k_e3_campaign_is_byte_identical() {
    let campaign = Campaign::new(Scenario::e3_fig3(), 10_000, 0xD5_2022);
    let run = assert_sharded_identical(&campaign, &options(4));
    assert_eq!(run.worker_failures, 0);
    assert_eq!(run.shard_ranges.len(), 4);

    // Same campaign, two workers, one of them SIGKILLed mid-run.
    let opts = options(2).with_sabotage(1, 1_500);
    let run = assert_sharded_identical(&campaign, &opts);
    assert!(run.worker_failures >= 1);
}

//! E5 extension demo: turning the paper's silent failures into
//! detected events.
//!
//! Runs two scenarios side by side:
//! 1. the Figure-3 campaign with the hardware watchdog armed — panic
//!    parks are detected when the starved watchdog expires;
//! 2. the E2 boot-window scenario with the cell heartbeat and the
//!    root-side safety monitor — the inconsistent state raises an
//!    alarm instead of silently lying.
//!
//! ```sh
//! cargo run --release --example detection_demo
//! ```

use certify_analysis::ExperimentReport;
use certify_core::campaign::{Campaign, Scenario};
use certify_core::Outcome;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("== E5a: watchdog vs panic park ==");
    let result = Campaign::new(Scenario::e5a_watchdog(), 60, 0x5A).run_parallel(workers);
    println!("{result}");
    for trial in result
        .trials
        .iter()
        .filter(|t| t.outcome == Outcome::PanicPark)
        .take(5)
    {
        match trial.report.watchdog_first_expiry {
            Some(step) => println!(
                "seed {:>4}: kernel died silently — watchdog expired at step {step}",
                trial.seed
            ),
            None => println!("seed {:>4}: PANIC UNDETECTED", trial.seed),
        }
    }
    print!("{}", ExperimentReport::e5a(&result.stats()));

    println!("\n== E5b: heartbeat monitor vs the inconsistent state ==");
    let result = Campaign::new(Scenario::e5b_monitor(), 30, 0x5B).run_parallel(workers);
    println!("{result}");
    for trial in result.trials.iter().take(3) {
        println!(
            "seed {:>4}: outcome '{}', monitor alarms: {}",
            trial.seed, trial.outcome, trial.report.monitor_alarms
        );
    }
    print!("{}", ExperimentReport::e5b(&result.stats()));
}

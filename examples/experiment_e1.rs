//! E1 as a standalone program: high-intensity injection in root-cell
//! context — every enable attempt must fail with "invalid arguments"
//! and the root cell must never be allocated.
//!
//! ```sh
//! cargo run --release --example experiment_e1 -- 40
//! ```

use certify_analysis::ExperimentReport;
use certify_core::campaign::{Campaign, Scenario};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let result = Campaign::new(Scenario::e1_root_high(), trials, 0xE1).run();
    println!("{result}");

    // Show the root-side view of one trial: the driver records the
    // rejection, the serial log carries the message.
    let trial = &result.trials[0];
    println!("--- trial seed {} ---", trial.seed);
    for injection in &trial.report.injections {
        println!("injection: {injection}");
    }
    for note in &trial.report.notes {
        println!("evidence:  {note}");
    }

    print!("{}", ExperimentReport::e1(&result.stats()));
}

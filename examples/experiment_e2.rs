//! E2 as a standalone program: the inconsistent cell state.
//!
//! Walks through one boot-window-aligned trial in full anatomy: the
//! injection on the cell-boot hypercall, the blank USART, the cell
//! still reported running, and the successful resource reclamation.
//!
//! ```sh
//! cargo run --release --example experiment_e2
//! ```

use certify_arch::CpuId;
use certify_core::campaign::Scenario;
use certify_core::{classify, System};
use certify_guest_linux::MgmtScript;
use certify_hypervisor::hypercall as hc;
use certify_hypervisor::CellState;

fn main() {
    // Build the system by hand so we can interleave checks.
    let mut system = System::new(MgmtScript::bring_up_and_run(2000));
    let spec = certify_core::InjectionSpec::e2_boot_window();
    let log = system.install_injector(spec, 0xE2);
    system.run(2500);

    println!("== injections ==");
    for record in log.records() {
        println!("{record}");
    }

    let cell = system.rtos_cell().expect("cell created");
    let state = system.hv.cell(cell).unwrap().state();
    let start = system.cell_start_step().unwrap_or(0);
    println!("\n== the inconsistent state ==");
    println!("cell state reported by the hypervisor: {state}");
    println!(
        "USART output from the cell since start:  {} lines (blank = {})",
        system.rtos_output_since(start),
        system.rtos_output_since(start) == 0
    );
    println!(
        "cpu1 park state: {:?}",
        system
            .machine
            .cpu(CpuId(1))
            .park_reason()
            .map(|r| r.to_string())
    );
    println!("boot hypercalls rejected: {}", system.boot_failures());
    assert_eq!(state, CellState::Running, "hypervisor believes it runs");

    println!("\n== timeline around the injection ==");
    let timeline = certify_analysis::Timeline::build(
        &log.records(),
        system.hv.events(),
        &system.serial_lines(),
    );
    if let Some(injection) = log.records().first() {
        for entry in timeline.around(injection.step, 40) {
            println!("{entry}");
        }
    }

    println!("\n== classification ==");
    print!("{}", classify(&system));

    println!("== recovery: shutdown returns the resources ==");
    let ret = system.hv.handle_hvc(
        &mut system.machine,
        CpuId(0),
        hc::HVC_CELL_SHUTDOWN,
        cell.0,
        0,
    );
    println!("cell_shutdown -> {ret}");
    println!("cpu1 owner: {:?}", system.hv.cpu_owner(CpuId(1)));
    assert_eq!(ret, 0);

    // And the campaign view:
    println!("\n== campaign view (30 aligned trials) ==");
    let result = certify_core::Campaign::new(Scenario::e2_boot_window(), 30, 7).run();
    println!("{result}");
}

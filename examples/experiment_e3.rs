//! E3 as a standalone program: regenerate Figure 3.
//!
//! ```sh
//! cargo run --release --example experiment_e3 -- 150
//! ```

use certify_analysis::{ExperimentReport, Figure3};
use certify_core::campaign::{Campaign, Scenario};
use certify_core::NullSink;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let stats = Campaign::new(Scenario::e3_fig3(), trials, 0xE3)
        .run_parallel_streamed(workers, &mut NullSink);

    let figure = Figure3::from_stats(&stats);
    println!("{}", figure.render_chart());
    println!("CSV:\n{}", figure.render_csv());
    print!("{}", ExperimentReport::e3(&stats));
}

//! Run any of the paper's fault-injection campaigns from the command
//! line — on the streamed engine: the outcome distribution folds
//! online and a small custom sink keeps only the first few
//! non-correct trials for the evidence printout, so memory stays
//! O(workers) however many trials you ask for.
//!
//! ```sh
//! cargo run --release --example fault_campaign -- e3 100
//! cargo run --release --example fault_campaign -- e1 40
//! cargo run --release --example fault_campaign -- e2 60
//! cargo run --release --example fault_campaign -- e2-boot 30
//! cargo run --release --example fault_campaign -- golden 5
//! ```

use certify_analysis::Figure3;
use certify_core::campaign::{Campaign, Scenario, TrialResult};
use certify_core::{Outcome, TrialSink};

/// Keeps the first `max` trials that didn't classify *correct* (with
/// their full reports) and drops everything else on delivery.
struct InterestingSink {
    keep: Vec<TrialResult>,
    max: usize,
}

impl TrialSink for InterestingSink {
    fn accept(&mut self, _seq: usize, trial: TrialResult) {
        if trial.outcome != Outcome::Correct && self.keep.len() < self.max {
            self.keep.push(trial);
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: fault_campaign <golden|e1|e2|e2-boot|e3> [trials] [seed]");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let which = args.next().unwrap_or_else(|| "e3".into());
    let trials: usize = args
        .next()
        .map(|t| t.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(60);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0xD5_2022);

    let scenario = match which.as_str() {
        "golden" => Scenario::golden(3000),
        "e1" => Scenario::e1_root_high(),
        "e2" => Scenario::e2_nonroot_high(),
        "e2-boot" => Scenario::e2_boot_window(),
        "e3" => Scenario::e3_fig3(),
        _ => usage(),
    };

    println!(
        "running scenario '{}' with {trials} trials (seed {seed:#x}, streamed)…",
        scenario.name
    );
    let campaign = Campaign::new(scenario, trials, seed);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut sink = InterestingSink {
        keep: Vec::new(),
        max: 3,
    };
    let stats = campaign.run_parallel_streamed(workers, &mut sink);
    println!("{stats}");

    if which == "e3" {
        let figure = Figure3::from_stats(&stats);
        println!("{}", figure.render_chart());
        println!("paper shape reproduced: {}", figure.matches_paper_shape());
    }

    // Show the retained interesting trials in detail.
    for trial in &sink.keep {
        println!("--- seed {} => {} ---", trial.seed, trial.outcome);
        for injection in &trial.report.injections {
            println!("  injection: {injection}");
        }
        for note in &trial.report.notes {
            println!("  evidence:  {note}");
        }
    }
}

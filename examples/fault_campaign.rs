//! Run any of the paper's fault-injection campaigns from the command
//! line.
//!
//! ```sh
//! cargo run --release --example fault_campaign -- e3 100
//! cargo run --release --example fault_campaign -- e1 40
//! cargo run --release --example fault_campaign -- e2 60
//! cargo run --release --example fault_campaign -- e2-boot 30
//! cargo run --release --example fault_campaign -- golden 5
//! ```

use certify_analysis::Figure3;
use certify_core::campaign::{Campaign, Scenario};

fn usage() -> ! {
    eprintln!("usage: fault_campaign <golden|e1|e2|e2-boot|e3> [trials] [seed]");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let which = args.next().unwrap_or_else(|| "e3".into());
    let trials: usize = args
        .next()
        .map(|t| t.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(60);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0xD5_2022);

    let scenario = match which.as_str() {
        "golden" => Scenario::golden(3000),
        "e1" => Scenario::e1_root_high(),
        "e2" => Scenario::e2_nonroot_high(),
        "e2-boot" => Scenario::e2_boot_window(),
        "e3" => Scenario::e3_fig3(),
        _ => usage(),
    };

    println!(
        "running scenario '{}' with {trials} trials (seed {seed:#x})…",
        scenario.name
    );
    let campaign = Campaign::new(scenario, trials, seed);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let result = campaign.run_parallel(workers);
    println!("{result}");

    if which == "e3" {
        let figure = Figure3::from_campaign(&result);
        println!("{}", figure.render_chart());
        println!("paper shape reproduced: {}", figure.matches_paper_shape());
    }

    // Show three interesting trials in detail.
    for trial in result
        .trials
        .iter()
        .filter(|t| t.outcome != certify_core::Outcome::Correct)
        .take(3)
    {
        println!("--- seed {} => {} ---", trial.seed, trial.outcome);
        for injection in &trial.report.injections {
            println!("  injection: {injection}");
        }
        for note in &trial.report.notes {
            println!("  evidence:  {note}");
        }
    }
}

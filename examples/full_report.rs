//! Regenerates the complete paper-vs-measured report (the data behind
//! EXPERIMENTS.md) in one run: E1–E4 plus the E5 extensions.
//!
//! ```sh
//! cargo run --release --example full_report
//! cargo run --release --example full_report -- --quick   # smaller campaigns
//! ```

use certify_analysis::{CsvSink, ExperimentReport, Figure3};
use certify_core::campaign::{Campaign, Scenario};
use certify_core::profiler::profile_golden_run;
use certify_core::NullSink;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (dist_trials, det_trials) = if quick { (40, 12) } else { (150, 40) };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let seed = 0xD5_2022;
    let mut reports = Vec::new();

    println!("# Paper-vs-measured report\n");

    // E1
    let e1 = Campaign::new(Scenario::e1_root_high(), det_trials, seed)
        .run_parallel_streamed(workers, &mut NullSink);
    println!("{e1}");
    reports.push(ExperimentReport::e1(&e1));

    // E2 (both campaigns)
    let e2_bw = Campaign::new(Scenario::e2_boot_window(), det_trials, seed)
        .run_parallel_streamed(workers, &mut NullSink);
    println!("{e2_bw}");
    let e2_full = Campaign::new(Scenario::e2_nonroot_high(), 2 * det_trials, seed)
        .run_parallel_streamed(workers, &mut NullSink);
    println!("{e2_full}");
    reports.push(ExperimentReport::e2(&e2_bw, &e2_full));

    // E3 + Figure 3. The per-trial CSV (--csv) wants the full rows,
    // so this one campaign streams into a CSV sink as it runs; the
    // reports themselves only need the online stats.
    let mut e3_csv = CsvSink::in_memory();
    let e3 = Campaign::new(Scenario::e3_fig3(), dist_trials, seed)
        .run_parallel_streamed(workers, &mut e3_csv);
    println!("{e3}");
    let figure = Figure3::from_stats(&e3);
    println!("{}", figure.render_chart());
    reports.push(ExperimentReport::e3(&e3));

    // E4
    let profile = profile_golden_run(3000);
    println!("{profile}");
    reports.push(ExperimentReport::e4(&profile));

    // E5 extensions
    let e5a = Campaign::new(Scenario::e5a_watchdog(), dist_trials, seed)
        .run_parallel_streamed(workers, &mut NullSink);
    reports.push(ExperimentReport::e5a(&e5a));
    let e5b = Campaign::new(Scenario::e5b_monitor(), det_trials, seed)
        .run_parallel_streamed(workers, &mut NullSink);
    reports.push(ExperimentReport::e5b(&e5b));

    println!("\n# Summary\n");
    let mut all_reproduced = true;
    for report in &reports {
        println!("{report}");
        all_reproduced &= report.reproduced;
    }
    println!(
        "\nall experiments reproduced: {}",
        if all_reproduced { "YES" } else { "NO" }
    );

    // Per-trial CSV of the headline figure, for external analysis
    // (streamed row by row while the campaign ran).
    if std::env::args().any(|a| a == "--csv") {
        println!("\n# E3 per-trial CSV\n{}", e3_csv.into_csv());
    }
    if !all_reproduced {
        std::process::exit(1);
    }
}

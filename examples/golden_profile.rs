//! E4: golden-run profiling — rediscovering the paper's three
//! injection points.
//!
//! ```sh
//! cargo run --release --example golden_profile -- 3000
//! ```

use certify_core::profiler::profile_golden_run;

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000);
    let profile = profile_golden_run(steps);
    print!("{profile}");
    println!(
        "candidate injection points: {}",
        profile
            .candidates()
            .iter()
            .map(|h| h.function_name())
            .collect::<Vec<_>>()
            .join(", ")
    );
}

//! Static analysis of campaign specs with `certify-lint`.
//!
//! Lints every built-in scenario (all must be clean), then
//! deliberately breaks one spec three ways — a window past the
//! horizon, an unsatisfiable rate, a memory target in the unmapped
//! hole — and shows the diagnostics the coordinator would refuse the
//! campaign with, both as text and as the `--json` wire form.
//!
//! ```sh
//! cargo run --example lint_scenarios
//! ```

use certify_core::campaign::Scenario;
use certify_core::memfault::{MemFaultModel, MemRegionKind};
use certify_core::spec::InjectionWindow;
use certify_lint::{
    builtin_scenarios, diagnostics_to_json, has_errors, lint_mem_regions, lint_scenario,
};

fn main() {
    println!("== built-in scenarios ==");
    for scenario in builtin_scenarios() {
        let diags = lint_scenario(&scenario);
        println!(
            "  {:<28} {}",
            scenario.name,
            if diags.is_empty() {
                "clean".to_string()
            } else {
                format!("{} finding(s)", diags.len())
            }
        );
    }

    println!("\n== a deliberately broken spec ==");
    let mut scenario = Scenario::e3_fig3();
    {
        let spec = scenario.spec.as_mut().unwrap();
        // Opens after the 4500-step horizon: never arms.
        spec.windows = vec![InjectionWindow::new(9000, 9500)];
        // More injections demanded than handler calls exist.
        spec.rate = u64::MAX;
    }
    let mut diags = lint_scenario(&scenario);
    // A memory target aimed at the unmapped hole below DRAM: every
    // sampled address would be a skipped injection.
    diags.extend(lint_mem_regions(
        &MemFaultModel::SingleBitFlip,
        &[MemRegionKind::Custom {
            base: 0x1000_0000,
            size: 0x1000,
        }],
        "mem_spec.target",
    ));
    for diag in &diags {
        println!("  {diag}");
    }
    println!(
        "\n  verdict: {}",
        if has_errors(&diags) {
            "REFUSED (the shard coordinator would not spawn workers)"
        } else {
            "runnable with warnings"
        }
    );

    println!("\n== the same findings as `certify-lint --json` emits ==");
    println!("{}", diagnostics_to_json(&diags).render());
}

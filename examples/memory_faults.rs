//! E6 — the memory-fault campaign: sweep fault model × target region.
//!
//! Runs a seeded campaign for every memory fault model against every
//! E6 target region (non-root RAM, stage-2 translation tables, the
//! communication region), each in parallel **on the streamed engine**
//! (trials fold into `CampaignStats` as they complete; only
//! O(workers) reports are ever resident), and prints:
//!
//! * the per-(model, region) outcome distribution,
//! * the aggregated per-region outcome distribution as CSV,
//! * a full per-trial CSV (with the `applied_faults` column) for the
//!   mixed-region campaign, streamed row by row to stdout.
//!
//! ```sh
//! cargo run --release --example memory_faults            # 12 trials per cell
//! cargo run --release --example memory_faults -- 30 7    # trials, seed
//! ```

use certify_analysis::CsvSink;
use certify_core::campaign::{Campaign, Scenario};
use certify_core::memfault::{MemFaultModel, MemRegionKind, MemTarget};
use certify_core::{NullSink, Outcome};
use std::collections::BTreeMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().and_then(|t| t.parse().ok()).unwrap_or(12);
    let seed: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE6_2022);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let regions = [
        MemRegionKind::NonRootRam,
        MemRegionKind::Stage2Tables,
        MemRegionKind::CommRegion,
    ];
    let models = MemFaultModel::e6_models();

    println!(
        "E6 memory-fault sweep: {} models x {} regions, {trials} trials each (seed {seed:#x}, {workers} workers, streamed)",
        models.len(),
        regions.len(),
    );

    // region -> outcome -> count, aggregated over all models.
    let mut per_region: BTreeMap<(MemRegionKind, Outcome), usize> = BTreeMap::new();

    for model in &models {
        for region in regions {
            let scenario = Scenario::e6_memory(model.clone(), MemTarget::only(region));
            let stats =
                Campaign::new(scenario, trials, seed).run_parallel_streamed(workers, &mut NullSink);
            print!(
                "\n--- {model} x {region} ({} of {trials} trials injected) ---\n{stats}",
                stats.mem_injected_trials
            );
            for ((r, outcome), count) in &stats.mem_region_distribution {
                *per_region.entry((*r, *outcome)).or_insert(0) += count;
            }
        }
    }

    println!("\n==== per-region outcome distribution (CSV) ====");
    println!("region,outcome,trials");
    for ((region, outcome), count) in &per_region {
        println!("{region},\"{outcome}\",{count}");
    }

    // One mixed-region campaign, exported per-trial with the
    // applied_faults column: rows stream to stdout as trials finish,
    // each report dropped after its row.
    println!("\n==== mixed-region single-bit-flip campaign (per-trial CSV, streamed) ====");
    let stdout = std::io::stdout();
    let mut csv = CsvSink::new(stdout.lock()).expect("stdout writable");
    let mixed = Campaign::new(
        Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()),
        trials,
        seed,
    )
    .run_parallel_streamed(workers, &mut csv);
    let rows = csv.rows();
    drop(csv.finish().expect("stdout writable"));
    assert_eq!(rows, mixed.trials, "one CSV row per trial");

    // The sweep must have exercised every region.
    for region in regions {
        assert!(
            per_region.keys().any(|(r, _)| *r == region),
            "region {region} never had a fault applied"
        );
    }
}

//! Mixed-criticality isolation demo: what the partitioning hypervisor
//! promises, shown on the live system.
//!
//! Demonstrates, on a running root-Linux + FreeRTOS deployment:
//! 1. both criticality domains make progress concurrently;
//! 2. an isolation violation from the non-root cell is contained
//!    (the CPU parks, the root cell keeps running);
//! 3. the root cell reclaims the CPU and peripherals with
//!    `cell shutdown` + `cell destroy` and the memory is scrubbed.
//!
//! ```sh
//! cargo run --release --example mixed_criticality
//! ```

use certify_arch::CpuId;
use certify_board::memmap;
use certify_core::System;
use certify_guest_linux::MgmtScript;
use certify_hypervisor::hypercall as hc;
use certify_hypervisor::{CellState, Guest};

fn main() {
    let mut system = System::new(MgmtScript::bring_up_and_run(u64::MAX / 2));
    system.run(2500);

    let cell = system.rtos_cell().expect("cell created");
    println!("== phase 1: both domains alive ==");
    println!(
        "cell {cell} state: {}",
        system.hv.cell(cell).unwrap().state()
    );
    println!("rtos LED toggles:  {}", system.rtos_led_toggles());
    println!(
        "root heartbeat LED: {}",
        system.machine.gpio.toggle_count(memmap::ROOT_LED_PIN)
    );
    println!(
        "rtos kernel slices: {}",
        system.rtos.kernel().total_slices()
    );

    println!("\n== phase 2: the non-root cell violates isolation ==");
    // Reach into the running system and make the rtos cell touch root
    // memory, exactly like a wild pointer would.
    system.hv.guest_ram_write(
        &mut system.machine,
        CpuId(1),
        memmap::ROOT_RAM_BASE + 64,
        0xbad,
    );
    println!(
        "cpu1 parked: {:?}",
        system
            .machine
            .cpu(CpuId(1))
            .park_reason()
            .map(|r| r.to_string())
    );
    println!("cell state now: {}", system.hv.cell(cell).unwrap().state());

    // The root cell keeps going.
    let root_led_before = system.machine.gpio.toggle_count(memmap::ROOT_LED_PIN);
    system.run(500);
    let root_led_after = system.machine.gpio.toggle_count(memmap::ROOT_LED_PIN);
    println!(
        "root cell still beating: {} -> {} heartbeat toggles",
        root_led_before, root_led_after
    );
    assert!(root_led_after > root_led_before);

    println!("\n== phase 3: reclaim and scrub ==");
    let ret = system.hv.handle_hvc(
        &mut system.machine,
        CpuId(0),
        hc::HVC_CELL_SHUTDOWN,
        cell.0,
        0,
    );
    println!("cell_shutdown -> {ret}");
    assert_eq!(ret, 0);
    println!(
        "cpu1 owner back to root: {:?}",
        system.hv.cpu_owner(CpuId(1))
    );
    assert_eq!(system.hv.cell(cell).unwrap().state(), CellState::ShutDown);

    let probe = memmap::RTOS_RAM_BASE + 0x40;
    let ret = system.hv.handle_hvc(
        &mut system.machine,
        CpuId(0),
        hc::HVC_CELL_DESTROY,
        cell.0,
        0,
    );
    println!("cell_destroy -> {ret}");
    assert_eq!(ret, 0);
    println!(
        "cell RAM scrubbed: word at 0x{probe:08x} = {:#x}",
        system.machine.ram().read32(probe).unwrap()
    );
    println!("\nroot cell health at the end: {}", system.linux.health());
}

//! Quickstart: boot the paper's mixed-criticality testbed, run it
//! fault-free, and look at every observation channel.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use certify_core::campaign::Scenario;
use certify_core::profiler::profile_system;
use certify_core::{classify, System};
use certify_guest_linux::MgmtScript;

fn main() {
    // The golden scenario: Linux root cell enables the hypervisor,
    // hands CPU 1 over, and brings up the FreeRTOS cell with the
    // paper's 20-task workload.
    let mut system = System::new(MgmtScript::bring_up_and_run(3000));
    system.run(4000);

    println!("=== serial console (first 20 lines) ===");
    for (step, line) in system.serial_lines().into_iter().take(20) {
        println!("{step:>6} | {line}");
    }

    println!("\n=== observation channels ===");
    println!(
        "LED toggles (FreeRTOS blink task): {}",
        system.rtos_led_toggles()
    );
    println!(
        "RTOS serial lines since cell start: {}",
        system
            .cell_start_step()
            .map(|s| system.rtos_output_since(s))
            .unwrap_or(0)
    );
    println!("hypervisor events recorded: {}", system.hv.events().len());

    println!("\n=== golden-run handler profile (E4) ===");
    print!("{}", profile_system(&system, system.steps_run()));

    println!("=== classification ===");
    let report = classify(&system);
    print!("{report}");

    // The same thing, as one call:
    let trial = Scenario::golden(3000).run_trial(0);
    println!("\none-call golden trial outcome: {}", trial.outcome);
}

//! A campaign executed as multiple OS worker processes — and proved
//! identical to the single-process run.
//!
//! The coordinator (`certify_shard::run_sharded`) splits the seed
//! space into contiguous shards, spawns one `shard_worker` process
//! per shard, streams their CRC-framed CSV rows back into global seed
//! order and merges their `CampaignStats`. This example runs the same
//! E3 campaign both ways and asserts stats *and CSV bytes* are
//! bit-identical — optionally while SIGKILLing one worker mid-run to
//! demonstrate the re-execution recovery path (the CI smoke does
//! exactly that).
//!
//! ```sh
//! cargo build --release -p certify_shard   # the worker binary
//! cargo run --release --example sharded_campaign               # 2000 trials, 2 shards
//! cargo run --release --example sharded_campaign -- 4000 4     # trials, shards
//! cargo run --release --example sharded_campaign -- 2000 2 --kill 1@200
//! #                            kill shard 1's worker after 200 rows ^
//! cargo run --release --example sharded_campaign -- 2000 2 --progress
//! #  live per-shard progress snapshots + a JSON telemetry report  ^
//! ```

use certify_analysis::CsvSink;
use certify_core::campaign::{Campaign, Scenario};
use certify_core::{progress_to_json, shard_metrics_to_json, Json};
use certify_obs::{MonotonicClock, ProgressSnapshot};
use certify_shard::{run_sharded, run_sharded_observed, ShardOptions};
use std::time::Instant;

/// Render one live snapshot line: where it came from, how far along,
/// the throughput and — once the tracker has one — the ETA.
fn print_snapshot(s: &ProgressSnapshot) {
    let source = match s.source {
        Some(shard) => format!("shard {shard}"),
        None => "campaign".to_string(),
    };
    let eta = match s.eta_ns {
        Some(ns) => format!("{:5.1} s", ns as f64 / 1e9),
        None => "   ?  ".to_string(),
    };
    println!(
        "[progress] {source:>9}: {:6}/{:<6} rows | {:8.0} rows/s | eta {eta}",
        s.done, s.total, s.rows_per_sec
    );
}

fn main() {
    let mut trials: usize = 2000;
    let mut shards: usize = 2;
    let mut kill: Option<(usize, u64)> = None;
    let mut progress = false;

    let mut args = std::env::args().skip(1);
    let mut positional = 0;
    while let Some(arg) = args.next() {
        if arg == "--kill" {
            let spec = args.next().expect("--kill needs shard@rows");
            let (shard, rows) = spec.split_once('@').expect("--kill format: shard@rows");
            kill = Some((
                shard.parse().expect("shard index"),
                rows.parse().expect("row count"),
            ));
        } else if arg == "--progress" {
            progress = true;
        } else {
            match positional {
                0 => trials = arg.parse().expect("trial count"),
                _ => shards = arg.parse().expect("shard count"),
            }
            positional += 1;
        }
    }

    let campaign = Campaign::new(Scenario::e3_fig3(), trials, 0xD5_2022);

    // The single-process reference: streamed stats + CSV.
    let start = Instant::now();
    let mut reference_sink = CsvSink::in_memory();
    let reference_stats = campaign.run_streamed(&mut reference_sink);
    let reference_csv = reference_sink.into_csv();
    let single_secs = start.elapsed().as_secs_f64();

    // The sharded run.
    let mut opts = ShardOptions::new(shards);
    if let Some((shard, rows)) = kill {
        opts = opts.with_sabotage(shard, rows);
        println!("sabotage armed: SIGKILL shard {shard}'s worker after {rows} rows");
    }
    let start = Instant::now();
    let mut sharded_csv = Vec::new();
    let mut snapshots: Vec<ProgressSnapshot> = Vec::new();
    let run = if progress {
        let clock = MonotonicClock::new();
        let mut observer = |s: &ProgressSnapshot| {
            print_snapshot(s);
            snapshots.push(s.clone());
        };
        run_sharded_observed(
            &campaign,
            &opts,
            Some(&mut sharded_csv),
            &clock,
            &mut observer,
        )
    } else {
        run_sharded(&campaign, &opts, Some(&mut sharded_csv))
    }
    .unwrap_or_else(|e| panic!("sharded run failed: {e}"));
    let sharded_secs = start.elapsed().as_secs_f64();

    assert_eq!(
        run.stats, reference_stats,
        "sharded stats diverged from the single-process run"
    );
    assert_eq!(
        String::from_utf8(sharded_csv).unwrap(),
        reference_csv,
        "sharded CSV bytes diverged from the single-process run"
    );
    if kill.is_some() {
        assert!(
            run.worker_failures >= 1,
            "the sabotaged worker must have been recovered"
        );
    }

    println!("{}", run.stats);
    println!(
        "shards: {:?} | worker failures recovered: {}",
        run.shard_ranges, run.worker_failures
    );
    println!(
        "single-process: {single_secs:5.2} s ({:7.0} trials/sec)",
        trials as f64 / single_secs
    );
    println!(
        "{shards:2} shard(s):     {sharded_secs:5.2} s ({:7.0} trials/sec)",
        trials as f64 / sharded_secs
    );
    println!("sharded output verified bit-identical to the single-process run");

    if progress {
        assert!(
            !snapshots.is_empty(),
            "an observed run must have produced progress snapshots"
        );
        let last = snapshots.last().unwrap();
        assert_eq!(last.done, trials as u64, "the final snapshot must be 100%");
        // The telemetry report: everything the observer saw plus the
        // merged and per-shard transport counters, as JSON.
        let report = Json::obj([
            ("trials", Json::U64(trials as u64)),
            ("snapshots", Json::U64(snapshots.len() as u64)),
            ("final_progress", progress_to_json(last)),
            ("transport", shard_metrics_to_json(&run.metrics)),
            (
                "shards",
                Json::Arr(
                    run.shard_metrics
                        .iter()
                        .map(shard_metrics_to_json)
                        .collect(),
                ),
            ),
        ]);
        println!("telemetry: {}", report.render());
    }
}

//! The streamed campaign engine at production scale: a 10 000-trial
//! Figure-3 campaign whose resident state is O(workers), not
//! O(trials).
//!
//! The buffered engine (`Campaign::run_parallel`) holds every trial's
//! full `RunReport` until the campaign ends; this example runs the
//! same campaign through `run_parallel_streamed`, where each report
//! is delivered to a `TrialSink` in seed order the moment its turn
//! comes and dropped right after — here a CSV export that keeps one
//! row buffer, while the outcome distribution folds online into
//! `CampaignStats`. The engine's delivery window guarantees at most
//! `workers` completed-but-undelivered reports exist at any instant,
//! and the run prints the measured high-water mark to prove it.
//!
//! ```sh
//! cargo run --release --example streamed_campaign              # 10000 trials
//! cargo run --release --example streamed_campaign -- 500 7 4   # trials, seed, workers
//! ```

use certify_analysis::{CsvSink, Figure3};
use certify_core::campaign::{Campaign, Scenario};

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().and_then(|t| t.parse().ok()).unwrap_or(10_000);
    let seed: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD5_2022);
    let workers: usize = args.next().and_then(|w| w.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });

    println!("streaming {trials} E3 trials across {workers} workers (seed {seed:#x})…");

    // Stream the per-trial CSV into a byte-counting void: a stand-in
    // for a file or a network socket that shows the export path never
    // buffers more than one row.
    let mut csv = CsvSink::new(CountingWriter::default()).expect("writer is infallible");
    let campaign = Campaign::new(Scenario::e3_fig3(), trials, seed);
    let (stats, high_water) = campaign.run_parallel_streamed_instrumented(workers, &mut csv);

    let rows = csv.rows();
    let bytes = csv.finish().expect("writer is infallible").bytes;
    println!("{stats}");
    println!("{}", Figure3::from_stats(&stats).render_chart());
    println!("CSV rows streamed: {rows} ({bytes} bytes, one row resident at a time)");
    println!(
        "resident-report high-water mark: {high_water} (bound: {} workers)",
        workers.min(trials.max(1))
    );
    assert_eq!(rows, trials, "one CSV row per trial");
    assert!(
        high_water <= workers.min(trials.max(1)),
        "engine exceeded its O(workers) residency bound"
    );
}

/// Counts bytes and throws them away.
#[derive(Debug, Default)]
struct CountingWriter {
    bytes: usize,
}

impl std::io::Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes += buf.len();
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

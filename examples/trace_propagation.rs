//! Flight-recorder tracing and golden-diff propagation analysis.
//!
//! Runs a traced E6 memory-fault campaign: every trial carries a
//! bounded flight recorder, and every anomalous trial (panic park,
//! inconsistent state, translation-fault storm, silent data
//! corruption) dumps its causal event stream. The example then takes
//! one silent-data-corruption dump and
//!
//! * exports it as a `chrome://tracing` / Perfetto JSON document,
//! * re-runs the *same seed* through the scenario's fault-free twin
//!   and prints the golden diff: the first step where the faulty
//!   trial's causal history diverges from the clean run, plus the
//!   divergent suffixes on both sides.
//!
//! ```sh
//! cargo run --release --example trace_propagation             # 500 trials
//! cargo run --release --example trace_propagation -- 200 7    # trials, seed
//! cargo run --release --example trace_propagation -- 200 7 /tmp/sdc.json
//! ```

use certify_analysis::golden_diff;
use certify_core::campaign::{Campaign, Scenario};
use certify_core::memfault::{MemFaultModel, MemTarget};
use certify_core::{CollectSink, Outcome, TraceConfig};
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().and_then(|t| t.parse().ok()).unwrap_or(500);
    let seed: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE6_2022);
    let chrome_out: PathBuf = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("trace_propagation.chrome.json"));
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    // The stock config: 4096-event ring, dump on anomalies.
    let config = TraceConfig::new();
    let scenario = Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6());
    let campaign = Campaign::new(scenario, trials, seed).with_trace(config.clone());

    println!(
        "Traced E6 campaign: {trials} trials (seed {seed:#x}, {workers} workers, \
         ring capacity {})",
        config.capacity
    );
    let mut sink = CollectSink::new();
    let stats = campaign.run_parallel_streamed(workers, &mut sink);
    print!("{stats}");
    let (_, dumps) = sink.into_parts();
    println!(
        "\n{} anomalous trials dumped a flight recording",
        dumps.len()
    );

    // Prefer a silent-data-corruption dump — the case propagation
    // analysis exists for — falling back to whatever anomaly came
    // first.
    let picked = dumps
        .iter()
        .find(|(_, d)| d.outcome == Outcome::SilentDataCorruption)
        .or_else(|| dumps.first());
    let Some((seq, dump)) = picked else {
        println!("no anomalies at this (trials, seed) — try more trials");
        return;
    };
    println!(
        "\n=== trial {seq} (seed {:#x}) classified `{}`: {} events retained, {} dropped ===",
        dump.seed,
        dump.outcome,
        dump.events.len(),
        dump.dropped
    );

    std::fs::write(&chrome_out, dump.to_chrome_trace()).expect("write chrome trace");
    println!(
        "chrome://tracing document written to {}",
        chrome_out.display()
    );

    // Golden diff: same seed, fault-free twin, first divergence. A
    // fault-free run survives to the horizon and records more events
    // than an early-dying faulty one, so give the twin a ring big
    // enough to avoid truncation — with both streams complete, the
    // first divergence is exactly the injection's first causal effect.
    let diff_config = config.clone().with_capacity(1 << 16);
    let diff = golden_diff(campaign.scenario(), dump, &diff_config);
    println!("\n{diff}");
}

//! `certify-uncertified` — facade crate re-exporting the whole stack.
//!
//! A reproduction of *"Certify the Uncertified: Towards Assessment of
//! Virtualization for Mixed-criticality in the Automotive Domain"*
//! (DSN 2022): a fault-injection framework probing the isolation and
//! integrity guarantees of a Jailhouse-like partitioning hypervisor.
//!
//! Start with [`core::campaign::Scenario`] and the examples in
//! `examples/`.

pub use certify_analysis as analysis;
pub use certify_arch as arch;
pub use certify_board as board;
pub use certify_core as core;
pub use certify_guest_linux as guest_linux;
pub use certify_hypervisor as hypervisor;
pub use certify_lint as lint;
pub use certify_obs as obs;
pub use certify_rtos as rtos;
pub use certify_shard as shard;

//! Helpers shared by the campaign integration suites.

/// The worker matrix the determinism and streaming suites sweep:
/// 1, 4 and whatever the host actually has, deduplicated.
pub fn worker_counts() -> Vec<usize> {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1, 4, available];
    counts.sort_unstable();
    counts.dedup();
    counts
}

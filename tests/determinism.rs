//! Parallel-vs-sequential determinism of the campaign engine.
//!
//! `Campaign::run_parallel` distributes trials over `std::thread::scope`
//! workers through the streamed reorder-buffer engine, but every trial
//! is seeded `base_seed + i` and delivered at sequence `i` — so the
//! result must be *identical* (every field of every `TrialResult`,
//! including full `RunReport` evidence) to sequential `run()`, for any
//! worker count and any OS scheduling of the workers. The streamed
//! `CampaignStats` must be identical too. CI runs this suite in both
//! debug and `--release`, where trial timing skew actually exercises
//! the reorder buffer.

use certify_core::campaign::{Campaign, CampaignResult, Scenario};
use certify_core::NullSink;

mod common;
use common::worker_counts;

fn assert_parallel_matches_sequential(campaign: &Campaign) {
    let sequential = campaign.run();
    let sequential_stats = campaign.run_streamed(&mut NullSink);
    assert_eq!(
        sequential_stats,
        sequential.stats(),
        "run_streamed stats diverged from run() for scenario {}",
        campaign.scenario().name
    );
    for workers in worker_counts() {
        let parallel = campaign.run_parallel(workers);
        assert_eq!(
            sequential,
            parallel,
            "run_parallel({workers}) diverged from run() for scenario {}",
            campaign.scenario().name
        );
        let parallel_stats = campaign.run_parallel_streamed(workers, &mut NullSink);
        assert_eq!(
            sequential_stats,
            parallel_stats,
            "run_parallel_streamed({workers}) stats diverged for scenario {}",
            campaign.scenario().name
        );
    }
}

#[test]
fn e1_campaign_is_deterministic_across_worker_counts() {
    assert_parallel_matches_sequential(&Campaign::new(Scenario::e1_root_high(), 12, 0xD5));
}

#[test]
fn e3_campaign_is_deterministic_across_worker_counts() {
    assert_parallel_matches_sequential(&Campaign::new(Scenario::e3_fig3(), 8, 2022));
}

#[test]
fn golden_campaign_is_deterministic_across_worker_counts() {
    assert_parallel_matches_sequential(&Campaign::new(Scenario::golden(1500), 6, 7));
}

#[test]
fn memory_campaign_is_deterministic_across_worker_counts() {
    use certify_core::memfault::{MemFaultModel, MemTarget};
    assert_parallel_matches_sequential(&Campaign::new(
        Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()),
        8,
        0xE6,
    ));
}

#[test]
fn mixed_register_memory_campaign_is_deterministic_across_worker_counts() {
    // A campaign with BOTH injectors armed must stay bit-identical
    // between run() and run_parallel() for workers 1, 4 and
    // available_parallelism (worker_counts() covers all three).
    let campaign = Campaign::new(Scenario::e7_mixed(), 8, 2026);
    assert_parallel_matches_sequential(&campaign);
    let result = campaign.run();
    assert!(
        result.trials.iter().any(|t| t.injection_count > 0),
        "mixed campaign fired no register injections"
    );
    assert!(
        result.trials.iter().any(|t| t.mem_injection_count > 0),
        "mixed campaign applied no memory injections"
    );
}

#[test]
fn concatenated_ranges_equal_the_full_run() {
    // The shard execution primitive: `run_range_streamed` over any
    // partition of the trial space must deliver exactly the trials —
    // same global sequence numbers, same full reports — the
    // single-process `run_streamed` delivers, and the per-range stats
    // must merge to the full-run stats. E7 arms both injectors, so
    // this also pins that a range's RNG state never leaks from one
    // range into the next.
    use certify_core::campaign::TrialResult;
    use certify_core::CampaignStats;

    for (scenario, trials) in [(Scenario::e3_fig3(), 8usize), (Scenario::e7_mixed(), 6)] {
        let campaign = Campaign::new(scenario, trials, 0xD5_2022);
        let mut full = Vec::new();
        let full_stats = campaign.run_streamed(&mut |seq: usize, t: TrialResult| {
            full.push((seq, t));
        });

        for split in 1..trials {
            let mut pieces = Vec::new();
            let mut merged = CampaignStats::new(campaign.scenario().name.clone());
            for (start, len) in [(0, split), (split, trials - split)] {
                merged.merge(&campaign.run_range_streamed(
                    start,
                    len,
                    &mut |seq: usize, t: TrialResult| {
                        pieces.push((seq, t));
                    },
                ));
            }
            assert_eq!(
                pieces,
                full,
                "ranges split at {split} diverged for scenario {}",
                campaign.scenario().name
            );
            assert_eq!(
                merged, full_stats,
                "merged range stats diverged at split {split}"
            );
        }
    }
}

#[test]
fn traced_campaigns_dump_identically_across_engines() {
    // The flight recorder rides the deterministic trial path, so a
    // traced campaign must surface byte-identical dumps — same seqs,
    // same event streams, same wire encodings — whether the trials run
    // sequentially or through the parallel reorder-buffer engine.
    use certify_core::{encode_to_vec, CollectSink, DumpPolicy, TraceConfig};

    let config = TraceConfig::new().with_policy(DumpPolicy::all_outcomes());
    for (scenario, trials) in [(Scenario::e3_fig3(), 8usize), (Scenario::e7_mixed(), 6)] {
        let campaign = Campaign::new(scenario, trials, 0xD5_2022).with_trace(config.clone());
        let name = campaign.scenario().name.clone();

        let mut seq_sink = CollectSink::new();
        campaign.run_streamed(&mut seq_sink);
        let (seq_trials, seq_dumps) = seq_sink.into_parts();
        assert_eq!(
            seq_dumps.len(),
            trials,
            "{name}: all_outcomes must dump every trial"
        );

        for workers in worker_counts() {
            let mut par_sink = CollectSink::new();
            campaign.run_parallel_streamed(workers, &mut par_sink);
            let (par_trials, par_dumps) = par_sink.into_parts();
            assert_eq!(
                seq_trials, par_trials,
                "{name}: traced trials diverged at {workers} workers"
            );
            assert_eq!(seq_dumps.len(), par_dumps.len(), "{name}: dump count");
            for ((seq_a, a), (seq_b, b)) in seq_dumps.iter().zip(&par_dumps) {
                assert_eq!(seq_a, seq_b, "{name}: dump sequence order");
                assert_eq!(
                    encode_to_vec(a),
                    encode_to_vec(b),
                    "{name}: trial {seq_a} dump not byte-identical at {workers} workers"
                );
            }
        }
    }
}

#[test]
fn traced_trials_repeat_their_event_streams() {
    // Same seed, same stream: re-running a traced trial reproduces the
    // recorder's exact contents, including the drop counter.
    use certify_core::{encode_to_vec, TraceConfig};

    let runner = Scenario::e7_mixed().runner();
    let config = TraceConfig::new();
    for seed in 0..6 {
        let (trial_a, dump_a) = runner.run_trial_traced(seed, Some(&config));
        let (trial_b, dump_b) = runner.run_trial_traced(seed, Some(&config));
        assert_eq!(trial_a, trial_b);
        assert_eq!(
            encode_to_vec(&dump_a.expect("traced trial always dumps")),
            encode_to_vec(&dump_b.expect("traced trial always dumps")),
            "seed {seed}: replayed event stream drifted"
        );
    }
}

#[test]
fn parallel_run_with_more_workers_than_trials() {
    let campaign = Campaign::new(Scenario::e1_root_high(), 3, 1);
    assert_eq!(campaign.run(), campaign.run_parallel(64));
}

#[test]
fn zero_workers_clamps_to_one() {
    let campaign = Campaign::new(Scenario::e1_root_high(), 2, 5);
    assert_eq!(campaign.run(), campaign.run_parallel(0));
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Work stealing means trial->worker assignment varies run to run;
    // the result must not.
    let campaign = Campaign::new(Scenario::e3_fig3(), 6, 99);
    let first: CampaignResult = campaign.run_parallel(4);
    for _ in 0..3 {
        assert_eq!(first, campaign.run_parallel(4));
    }
}

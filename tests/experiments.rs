//! Integration: the paper's experiments hold, shape-wise, across
//! seeds. These are the same campaigns the benches regenerate, at
//! smaller trial counts suitable for the test suite.

use certify_analysis::{ExperimentReport, Figure3};
use certify_core::campaign::{Campaign, Scenario};
use certify_core::profiler::profile_golden_run;
use certify_core::Outcome;

#[test]
fn e1_high_intensity_root_context_always_invalid_arguments() {
    let result = Campaign::new(Scenario::e1_root_high(), 12, 0xAA).run();
    for trial in &result.trials {
        assert_eq!(
            trial.outcome,
            Outcome::InvalidArguments,
            "seed {} diverged:\n{}",
            trial.seed,
            trial.report
        );
        assert!(trial.injection_count >= 1);
        // The evidence trail names the paper's message.
        assert!(trial
            .report
            .notes
            .iter()
            .any(|n| n.contains("not allocated")));
    }
    assert!(ExperimentReport::e1(&result.stats()).reproduced);
}

#[test]
fn e2_boot_window_yields_inconsistent_state_across_seeds() {
    let result = Campaign::new(Scenario::e2_boot_window(), 12, 0xBB).run();
    for trial in &result.trials {
        assert_eq!(
            trial.outcome,
            Outcome::InconsistentState,
            "seed {} diverged:\n{}",
            trial.seed,
            trial.report
        );
    }
}

#[test]
fn e2_comm_region_still_advertises_running_for_a_dead_cell() {
    // The deepest form of the paper's inconsistency: even the
    // communication region — what `jailhouse cell list` reads — says
    // RUNNING while the cell never executed an instruction.
    use certify_core::{InjectionSpec, System};
    use certify_guest_linux::MgmtScript;
    use certify_hypervisor::{CellState, Guest, GuestHealth};

    let mut system = System::new(MgmtScript::bring_up_and_run(1500));
    system.install_injector(InjectionSpec::e2_boot_window(), 0xB007);
    system.run(2500);

    let cell_id = system.rtos_cell().expect("cell created");
    let cell = system.hv.cell(cell_id).expect("cell exists");
    assert_eq!(cell.state(), CellState::Running);
    let published = cell
        .comm_region()
        .expect("cell has a comm region")
        .read_state(&system.machine);
    assert_eq!(published, Some(CellState::Running));
    // …and yet the guest never ran (either the boot hypercall was
    // rejected and it never entered, or it entered broken).
    assert!(
        !system.rtos.is_booted() || system.rtos.health() != GuestHealth::Healthy,
        "guest unexpectedly healthy"
    );
    let start = system.cell_start_step().unwrap();
    assert_eq!(system.rtos_output_since(start), 0, "USART not blank");
}

#[test]
fn e2_free_running_campaign_shows_the_peculiar_state_in_the_field() {
    let result = Campaign::new(Scenario::e2_nonroot_high(), 30, 0xCC).run_parallel(4);
    let inconsistent = result
        .trials
        .iter()
        .filter(|t| t.outcome == Outcome::InconsistentState)
        .count();
    assert!(
        inconsistent > 0,
        "no inconsistent-state trials in the free-running campaign:\n{result}"
    );
    // High intensity never propagates to a system panic: the argument
    // registers don't hold hypervisor pointers.
    assert_eq!(result.fraction(Outcome::PanicPark), 0.0, "{result}");
}

#[test]
fn e3_distribution_matches_figure3_shape() {
    let result = Campaign::new(Scenario::e3_fig3(), 60, 0xDD).run_parallel(4);
    let figure = Figure3::from_campaign(&result);
    assert!(
        figure.matches_paper_shape(),
        "distribution diverged from the paper's shape:\n{}",
        figure.render_chart()
    );
    // Every trial was actually injected.
    assert_eq!(result.injected_trials(), result.trials.len());
}

#[test]
fn e3_cpu_park_trials_carry_the_0x24_signature() {
    let result = Campaign::new(Scenario::e3_fig3(), 60, 0xEE).run_parallel(4);
    let park_trials: Vec<_> = result
        .trials
        .iter()
        .filter(|t| t.outcome == Outcome::CpuPark)
        .collect();
    assert!(!park_trials.is_empty(), "no cpu-park trials: {result}");
    for trial in park_trials {
        let has_code = trial
            .report
            .notes
            .iter()
            .any(|n| n.contains("0x24") || n.contains("0x20") || n.contains("0x2"));
        assert!(has_code, "park without trap code: {:?}", trial.report.notes);
    }
}

#[test]
fn e3_panic_trials_show_kernel_panic_on_serial() {
    let result = Campaign::new(Scenario::e3_fig3(), 60, 0xFF).run_parallel(4);
    let panic_trials: Vec<_> = result
        .trials
        .iter()
        .filter(|t| t.outcome == Outcome::PanicPark)
        .collect();
    assert!(!panic_trials.is_empty(), "no panic trials: {result}");
    for trial in panic_trials {
        assert!(
            trial.report.notes.iter().any(|n| n.contains("panic")),
            "panic trial without panic evidence: {:?}",
            trial.report.notes
        );
    }
}

#[test]
fn e4_profiling_finds_the_three_candidates() {
    let profile = profile_golden_run(2500);
    let report = ExperimentReport::e4(&profile);
    assert!(report.reproduced, "{report}");
}

#[test]
fn campaigns_are_reproducible_bit_for_bit() {
    let a = Campaign::new(Scenario::e3_fig3(), 8, 0x5EED).run();
    let b = Campaign::new(Scenario::e3_fig3(), 8, 0x5EED).run_parallel(4);
    for (ta, tb) in a.trials.iter().zip(&b.trials) {
        assert_eq!(ta.outcome, tb.outcome);
        assert_eq!(ta.report.injections, tb.report.injections);
    }
}

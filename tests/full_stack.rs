//! Integration: the whole stack, fault-free.

use certify_arch::CpuId;
use certify_board::memmap;
use certify_core::campaign::Scenario;
use certify_core::{classify, Outcome, System};
use certify_guest_linux::MgmtScript;
use certify_hypervisor::{CellState, Guest, GuestHealth, HandlerKind};

#[test]
fn golden_bring_up_reaches_steady_state() {
    let mut system = System::new(MgmtScript::bring_up_and_run(2500));
    system.run(3500);

    // Hypervisor installed, cell running, both guests healthy.
    assert!(system.hv.is_enabled());
    let cell = system.rtos_cell().expect("cell created");
    assert_eq!(system.hv.cell(cell).unwrap().state(), CellState::Running);
    assert_eq!(system.linux.health(), GuestHealth::Healthy);
    assert_eq!(system.rtos.health(), GuestHealth::Healthy);
    assert!(system.hv.panicked().is_none());

    // CPU assignment matches the paper: core 0 root, core 1 FreeRTOS.
    assert_eq!(
        system.hv.cpu_owner(CpuId(0)),
        Some(certify_hypervisor::cell::ROOT_CELL)
    );
    assert_eq!(system.hv.cpu_owner(CpuId(1)), Some(cell));
}

#[test]
fn golden_run_workload_makes_progress_on_every_task_class() {
    let mut system = System::new(MgmtScript::bring_up_and_run(6000));
    system.run(7000);

    // LED blink progress.
    assert!(system.rtos_led_toggles() > 20);

    // Queue traffic (sender/receiver pair).
    let kernel = system.rtos.kernel();
    let queue = certify_rtos::QueueId(0);
    assert!(kernel.queues().sent_total(queue) > 10, "sender starved");
    assert!(
        kernel.queues().received_total(queue) > 10,
        "receiver starved"
    );

    // Serial heartbeats from compute tasks.
    let lines = system.serial_lines();
    let rtos_lines: Vec<&String> = lines
        .iter()
        .map(|(_, l)| l)
        .filter(|l| l.starts_with("[rtos]"))
        .collect();
    assert!(
        rtos_lines.iter().any(|l| l.contains("float")),
        "no float-task output: {rtos_lines:?}"
    );
    assert!(
        rtos_lines.iter().any(|l| l.contains("int")),
        "no integer-task output"
    );
    assert!(rtos_lines.iter().any(|l| l.contains("blink")));
}

#[test]
fn golden_run_classifies_correct_across_seeds() {
    for seed in 0..3 {
        let trial = Scenario::golden(2000).run_trial(seed);
        assert_eq!(trial.outcome, Outcome::Correct, "seed {seed}");
    }
}

#[test]
fn handler_traffic_matches_the_papers_profiling() {
    let mut system = System::new(MgmtScript::bring_up_and_run(3000));
    system.run(4000);

    // The three candidates all fire; the non-root cell produces hvc
    // (console) and trap (GPIO) streams; the root cell produces hvc
    // (management) and trap (heartbeat) streams; irqs flow on both.
    for handler in HandlerKind::ALL {
        for cpu in [CpuId(0), CpuId(1)] {
            assert!(
                system.hv.call_count(handler, cpu) > 0,
                "{handler} silent on {cpu}"
            );
        }
    }
}

#[test]
fn serial_log_interleaves_all_sources() {
    let mut system = System::new(MgmtScript::bring_up_and_run(2500));
    system.run(3500);
    let events = certify_analysis::parse_log(&system.serial_lines());
    use certify_analysis::LogSource;
    let mut seen_linux = false;
    let mut seen_rtos = false;
    for (_, event) in &events {
        match event.source() {
            LogSource::Linux => seen_linux = true,
            LogSource::Rtos => seen_rtos = true,
            _ => {}
        }
    }
    assert!(seen_linux && seen_rtos);
}

#[test]
fn rtos_availability_is_high_in_golden_runs() {
    let mut system = System::new(MgmtScript::bring_up_and_run(5000));
    system.run(6000);
    let events = certify_analysis::parse_log(&system.serial_lines());
    let start = system.cell_start_step().expect("cell started");
    let report = certify_analysis::AvailabilityReport::compute(
        &events,
        certify_analysis::LogSource::Rtos,
        start,
        system.machine.now(),
        256,
    );
    assert!(!report.is_blank());
    assert!(
        report.availability() > 0.5,
        "availability only {:.2}",
        report.availability()
    );
}

#[test]
fn root_cell_keeps_uart_and_gpio_shared_fairly() {
    let mut system = System::new(MgmtScript::bring_up_and_run(2500));
    system.run(3500);
    // Both LEDs toggle: partitioned pins of the shared GPIO block.
    assert!(system.machine.gpio.toggle_count(memmap::LED_PIN) > 0);
    assert!(system.machine.gpio.toggle_count(memmap::ROOT_LED_PIN) > 0);
}

#[test]
fn classify_report_is_self_describing() {
    let mut system = System::new(MgmtScript::bring_up_and_run(1500));
    system.run(2000);
    let report = classify(&system);
    assert_eq!(report.outcome, Outcome::Correct);
    assert!(!report.notes.is_empty());
    assert!(report.serial_line_count > 0);
    assert_eq!(report.cell_state, Some(CellState::Running));
}

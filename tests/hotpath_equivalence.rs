//! Hot-path overhaul equivalence suite.
//!
//! The trial hot path was rebuilt around incremental state — the
//! UART's line index, the hypervisor's online [`Evidence`] counters
//! and the RTOS kernel's ready lists — in place of per-trial scans.
//! This suite pins the refactor to the historical semantics:
//!
//! * the O(1) evidence counters must agree with a from-scratch scan
//!   of the structured event trace, for every trial of golden, E2,
//!   E3, E6 and mixed E7 campaigns;
//! * classification built on those counters must hand back the same
//!   `RunReport`s / `CampaignStats` through the buffered and streamed
//!   engines, and the streamed CSV must stay byte-identical to the
//!   buffered render;
//! * the UART's incremental line index must reproduce a naive
//!   byte-at-a-time reassembly of real trial captures;
//! * the E3 distribution at the bench seed keeps its committed shape
//!   (55 panic park / 16 cpu park / 79 correct at 0xD52022);
//! * telemetry is inert: an instrumented run (`certify_obs` clock,
//!   metrics and progress snapshots) produces the same stats and the
//!   same CSV bytes as the uninstrumented engine.

use certify_analysis::{campaign_to_csv, CsvSink};
use certify_core::campaign::{Campaign, Scenario};
use certify_core::classify::{classify, Outcome};
use certify_core::system::System;
use certify_core::NullSink;
use certify_uncertified::arch::cpu::ParkReason;
use certify_uncertified::arch::CpuId;
use certify_uncertified::hypervisor::HvEvent;
use std::sync::Arc;

/// The scenarios the issue calls out, in cheap-to-run shapes.
fn scenarios() -> Vec<(Scenario, usize)> {
    use certify_core::memfault::{MemFaultModel, MemTarget};
    vec![
        (Scenario::golden(1500), 2),
        (Scenario::e2_boot_window(), 6),
        (Scenario::e3_fig3(), 8),
        (
            Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()),
            6,
        ),
        (Scenario::e7_mixed(), 6),
    ]
}

/// Runs one seeded trial of `scenario`, returning the live `System`
/// (the campaign engine classifies and drops it; the equivalence
/// checks need the carcass).
fn run_system(scenario: &Scenario, seed: u64) -> System {
    let script = Arc::new(scenario.script.clone());
    let mut system = if scenario.rtos_heartbeat {
        System::new_with_heartbeat(script)
    } else {
        System::new(script)
    };
    if let Some(spec) = &scenario.spec {
        system.install_injector(spec.clone(), seed);
    }
    if let Some(mem_spec) = &scenario.mem_spec {
        // Matches `TrialRunner`'s MEM_SEED_OFFSET derivation.
        system.install_mem_injector(mem_spec.clone(), seed.wrapping_add(0x6d65_6d66));
    }
    system.run(scenario.steps);
    system
}

/// Asserts the hypervisor's online evidence counters agree with a
/// from-scratch scan of the event trace — the queries `classify`
/// used to answer by iterating `hv.events()` four times.
fn assert_evidence_matches_event_scan(system: &System, context: &str) {
    let events = system.hv.events();
    let evidence = system.hv.evidence();

    for cpu in 0..system.machine.num_cpus() as u32 {
        let cpu = CpuId(cpu);
        let tally = evidence.park_tally(cpu);
        let scan = |pred: &dyn Fn(&ParkReason) -> bool| -> u64 {
            events
                .iter()
                .filter(|e| {
                    matches!(e, HvEvent::CpuParked { cpu: c, reason, .. }
                             if *c == cpu && pred(reason))
                })
                .count() as u64
        };
        assert_eq!(
            tally.unhandled_trap,
            scan(&|r| matches!(r, ParkReason::UnhandledTrap(_))),
            "{context}: unhandled-trap tally for {cpu}"
        );
        assert_eq!(
            tally.failed_online,
            scan(&|r| matches!(r, ParkReason::FailedOnline)),
            "{context}: failed-online tally for {cpu}"
        );
        assert_eq!(
            tally.idle,
            scan(&|r| matches!(r, ParkReason::Idle)),
            "{context}: idle tally for {cpu}"
        );
        assert_eq!(
            tally.cell_shutdown,
            scan(&|r| matches!(r, ParkReason::CellShutdown)),
            "{context}: cell-shutdown tally for {cpu}"
        );
        let first_trap = events.iter().find_map(|e| match e {
            HvEvent::CpuParked {
                cpu: c,
                reason: reason @ ParkReason::UnhandledTrap(_),
                ..
            } if *c == cpu => Some(*reason),
            _ => None,
        });
        assert_eq!(
            tally.first_unhandled_trap, first_trap,
            "{context}: first unhandled-trap reason for {cpu}"
        );
    }

    let violation_steps: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            HvEvent::AccessViolation { step, .. } => Some(*step),
            _ => None,
        })
        .collect();
    assert_eq!(
        evidence.access_violations(),
        violation_steps.len(),
        "{context}: total access violations"
    );
    // The classifier queries violations since the first live table
    // fault; sweep representative cut points.
    let mut cuts = vec![0, u64::MAX];
    cuts.extend(violation_steps.iter().flat_map(|&s| [s, s + 1]));
    for cut in cuts {
        assert_eq!(
            evidence.violations_since(cut),
            violation_steps.iter().filter(|&&s| s >= cut).count(),
            "{context}: violations since step {cut}"
        );
    }
}

/// Naive byte-at-a-time reassembly of the serial capture — the
/// implementation the incremental line index replaced.
fn naive_lines(system: &System) -> Vec<(u64, String)> {
    let mut lines = Vec::new();
    let mut current = Vec::new();
    let mut last_step = 0;
    for tx in system.machine.uart.captured() {
        last_step = tx.step;
        if tx.byte == b'\n' {
            lines.push((last_step, String::from_utf8_lossy(&current).into_owned()));
            current.clear();
        } else {
            current.push(tx.byte);
        }
    }
    if !current.is_empty() {
        lines.push((last_step, String::from_utf8_lossy(&current).into_owned()));
    }
    lines
}

#[test]
fn evidence_counters_match_event_scans_across_scenarios() {
    for (scenario, trials) in scenarios() {
        for seq in 0..trials as u64 {
            let seed = 0xD5_2022 + seq;
            let system = run_system(&scenario, seed);
            let context = format!("{} seed {seed}", scenario.name);
            assert_evidence_matches_event_scan(&system, &context);
        }
    }
}

#[test]
fn uart_line_index_matches_naive_reassembly_on_real_captures() {
    for (scenario, _) in scenarios() {
        let system = run_system(&scenario, 0xD5_2022);
        let naive = naive_lines(&system);
        assert_eq!(
            system.serial_lines(),
            naive,
            "{}: owned lines diverged from naive reassembly",
            scenario.name
        );
        assert_eq!(
            system.machine.uart.line_count(),
            naive.len(),
            "{}: line_count",
            scenario.name
        );
        let borrowed: Vec<(u64, String)> = system
            .machine
            .uart
            .indexed_lines()
            .map(|l| (l.step, l.text().into_owned()))
            .collect();
        assert_eq!(
            borrowed, naive,
            "{}: borrowed lines diverged from naive reassembly",
            scenario.name
        );
        // classify's serial_line_count feeds the CSV; keep it honest.
        assert_eq!(classify(&system).serial_line_count, naive.len());
    }
}

#[test]
fn streamed_and_buffered_campaigns_agree_after_the_overhaul() {
    for (scenario, trials) in scenarios() {
        let campaign = Campaign::new(scenario, trials, 0xD5_2022);
        let buffered = campaign.run();
        let stats = campaign.run_streamed(&mut NullSink);
        assert_eq!(
            stats,
            buffered.stats(),
            "{}: streamed stats diverged",
            campaign.scenario().name
        );
        let mut sink = CsvSink::in_memory();
        let parallel_stats = campaign.run_parallel_streamed(4, &mut sink);
        assert_eq!(
            parallel_stats,
            stats,
            "{}: parallel streamed stats diverged",
            campaign.scenario().name
        );
        assert_eq!(
            sink.into_csv(),
            campaign_to_csv(&buffered),
            "{}: streamed CSV not byte-identical to buffered",
            campaign.scenario().name
        );
        // Same seeds through the engine and through a bare System
        // must classify identically (RunReport level).
        for trial in &buffered.trials {
            let system = run_system(campaign.scenario(), trial.seed);
            assert_eq!(
                classify(&system),
                trial.report,
                "{} seed {}: classify(report) diverged from engine",
                campaign.scenario().name,
                trial.seed
            );
        }
    }
}

/// The observability law: telemetry must never influence trial
/// results. An instrumented run — phase timings, engine metrics,
/// progress snapshots — must produce the *same stats and the same CSV
/// bytes* as the uninstrumented engine, for every scenario shape.
#[test]
fn instrumented_runs_leave_results_and_csv_untouched() {
    use certify_core::EngineTelemetry;
    use certify_uncertified::obs::{CollectObserver, ManualClock};

    for (scenario, trials) in scenarios() {
        let campaign = Campaign::new(scenario, trials, 0xD5_2022);
        let name = campaign.scenario().name.clone();

        let mut plain_sink = CsvSink::in_memory();
        let plain_stats = campaign.run_parallel_streamed(4, &mut plain_sink);
        let plain_csv = plain_sink.into_csv();

        let clock = ManualClock::new();
        let mut observer = CollectObserver::default();
        let mut telemetry = EngineTelemetry::new(&clock, &mut observer, 2);
        let mut observed_sink = CsvSink::in_memory();
        let observed_stats =
            campaign.run_parallel_streamed_observed(4, &mut observed_sink, &mut telemetry);
        let observed_csv = observed_sink.into_csv();

        assert_eq!(observed_stats, plain_stats, "{name}: stats diverged");
        assert_eq!(observed_csv, plain_csv, "{name}: CSV bytes diverged");

        // And the run must actually have been observed.
        let metrics = &telemetry.metrics;
        assert_eq!(metrics.trials.get(), trials as u64, "{name}: trial count");
        assert_eq!(
            metrics.phases.total.count(),
            trials as u64,
            "{name}: phase samples"
        );
        assert_eq!(metrics.sink_rows.get(), trials as u64, "{name}: sink rows");
        assert_eq!(
            metrics.sink_bytes.get(),
            plain_csv.len() as u64,
            "{name}: sink bytes"
        );
        let last = observer
            .snapshots
            .last()
            .unwrap_or_else(|| panic!("{name}: no progress snapshots"));
        assert_eq!(last.done, trials as u64, "{name}: final snapshot done");
        assert_eq!(last.total, trials as u64, "{name}: final snapshot total");
        assert_eq!(last.source, None, "{name}: campaign-level snapshot");
    }
}

/// The same law for the flight recorder: arming tracing must leave
/// the CampaignStats and the CSV bytes untouched, and leaving it off
/// (`run_trial_traced(seed, None)`) must be *exactly* `run_trial` —
/// no recorder allocation, no extra events, identical results.
#[test]
fn tracing_leaves_results_and_csv_untouched() {
    use certify_core::TraceConfig;

    for (scenario, trials) in scenarios() {
        let campaign = Campaign::new(scenario, trials, 0xD5_2022);
        let name = campaign.scenario().name.clone();

        let mut plain_sink = CsvSink::in_memory();
        let plain_stats = campaign.run_parallel_streamed(4, &mut plain_sink);
        let plain_csv = plain_sink.into_csv();

        // Tracing off through the traced entry point.
        let runner = campaign.scenario().runner();
        for seq in 0..trials as u64 {
            let seed = 0xD5_2022 + seq;
            let (trial, dump) = runner.run_trial_traced(seed, None);
            assert_eq!(trial, runner.run_trial(seed), "{name}: tracing-off trial");
            assert!(dump.is_none(), "{name}: tracing off must never dump");
        }

        // Tracing on: same stats, same CSV bytes, out both engines.
        let traced = campaign.clone().with_trace(TraceConfig::new());
        let mut traced_sink = CsvSink::in_memory();
        let traced_stats = traced.run_parallel_streamed(4, &mut traced_sink);
        assert_eq!(traced_stats, plain_stats, "{name}: traced stats diverged");
        assert_eq!(
            traced_sink.into_csv(),
            plain_csv,
            "{name}: traced CSV bytes diverged"
        );
        let mut streamed_sink = CsvSink::in_memory();
        let streamed_stats = traced.run_streamed(&mut streamed_sink);
        assert_eq!(streamed_stats, plain_stats, "{name}: streamed traced stats");
        assert_eq!(
            streamed_sink.into_csv(),
            plain_csv,
            "{name}: streamed traced CSV bytes"
        );
    }
}

/// Same law under the real clock: `MonotonicClock` feeds nonzero
/// timings into the histograms without perturbing the results.
#[test]
fn instrumented_run_under_the_real_clock_matches_plain() {
    use certify_core::EngineTelemetry;
    use certify_uncertified::obs::{CollectObserver, MonotonicClock};

    let campaign = Campaign::new(Scenario::e3_fig3(), 8, 0xD5_2022);
    let plain_stats = campaign.run_parallel_streamed(4, &mut NullSink);

    let clock = MonotonicClock::new();
    let mut observer = CollectObserver::default();
    let mut telemetry = EngineTelemetry::new(&clock, &mut observer, 0);
    let observed_stats = campaign.run_parallel_streamed_observed(4, &mut NullSink, &mut telemetry);

    assert_eq!(observed_stats, plain_stats);
    assert_eq!(telemetry.metrics.trials.get(), 8);
    assert!(
        telemetry.metrics.phases.total.sum() > 0,
        "real-clock phase timings must be nonzero"
    );
    assert_eq!(observer.snapshots.len(), 1, "progress_every=0: final only");
}

#[test]
fn e3_shape_at_the_bench_seed_is_preserved() {
    let stats =
        Campaign::new(Scenario::e3_fig3(), 150, 0xD5_2022).run_parallel_streamed(4, &mut NullSink);
    assert_eq!(stats.count(Outcome::PanicPark), 55, "{stats}");
    assert_eq!(stats.count(Outcome::CpuPark), 16, "{stats}");
    assert_eq!(stats.count(Outcome::Correct), 79, "{stats}");
    assert_eq!(stats.trials, 150);
}

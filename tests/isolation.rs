//! Integration: the isolation and integrity guarantees the paper sets
//! out to verify, exercised end to end.

use certify_arch::cpu::ParkReason;
use certify_arch::CpuId;
use certify_board::memmap;
use certify_core::System;
use certify_guest_linux::MgmtScript;
use certify_hypervisor::hypercall as hc;
use certify_hypervisor::{CellState, Guest, GuestHealth};

fn running_system() -> System {
    let mut system = System::new(MgmtScript::bring_up_and_run(u64::MAX / 2));
    system.run(2000);
    assert!(system.hv.is_enabled());
    assert_eq!(system.rtos.health(), GuestHealth::Healthy);
    system
}

#[test]
fn nonroot_cannot_read_root_memory() {
    let mut system = running_system();
    system
        .hv
        .guest_ram_read(&mut system.machine, CpuId(1), memmap::ROOT_RAM_BASE + 0x100);
    assert_eq!(
        system.machine.cpu(CpuId(1)).park_reason(),
        Some(ParkReason::UnhandledTrap(0x24))
    );
}

#[test]
fn nonroot_cannot_write_hypervisor_memory() {
    let mut system = running_system();
    system
        .hv
        .guest_ram_write(&mut system.machine, CpuId(1), memmap::HV_RAM_BASE + 8, 1);
    assert!(system.machine.cpu(CpuId(1)).is_parked());
    // The root cell is unaffected.
    let before = system.machine.gpio.toggle_count(memmap::ROOT_LED_PIN);
    system.run(300);
    assert!(system.machine.gpio.toggle_count(memmap::ROOT_LED_PIN) > before);
}

#[test]
fn nonroot_cannot_touch_root_uart() {
    let mut system = running_system();
    let cell = system.rtos_cell().unwrap();
    system
        .hv
        .guest_mmio_write(&mut system.machine, CpuId(1), memmap::UART_BASE, 0x41);
    assert_eq!(
        system.machine.cpu(CpuId(1)).park_reason(),
        Some(ParkReason::UnhandledTrap(0x24))
    );
    assert_eq!(system.hv.cell(cell).unwrap().state(), CellState::Failed);
}

#[test]
fn violation_is_contained_and_cell_recoverable() {
    // The paper's E3 CPU-park conclusion: "the destruction of the
    // non-root cell, which brings the CPU core 1 control back to the
    // root cell, is accomplished without any issue".
    let mut system = running_system();
    let cell = system.rtos_cell().unwrap();
    system
        .hv
        .guest_ram_write(&mut system.machine, CpuId(1), memmap::ROOT_RAM_BASE, 7);
    assert!(system.machine.cpu(CpuId(1)).is_parked());

    // Root cell destroys the failed cell.
    let ret = system.hv.handle_hvc(
        &mut system.machine,
        CpuId(0),
        hc::HVC_CELL_DESTROY,
        cell.0,
        0,
    );
    assert_eq!(ret, 0);
    assert_eq!(
        system.hv.cpu_owner(CpuId(1)),
        Some(certify_hypervisor::cell::ROOT_CELL)
    );
    assert!(system.hv.cell(cell).is_none());

    // And can re-create it from scratch.
    let blob_addr = memmap::ROOT_RAM_BASE + 0x0300_0000;
    let config = certify_hypervisor::SystemConfig::freertos_cell();
    system
        .hv
        .stage_blob(&mut system.machine, blob_addr, &config.serialize());
    let id = system.hv.handle_hvc(
        &mut system.machine,
        CpuId(0),
        hc::HVC_CELL_CREATE,
        blob_addr,
        0,
    );
    assert!(id > 0, "re-create failed: {id}");
}

#[test]
fn shutdown_returns_cpu_and_peripherals() {
    let mut system = running_system();
    let cell = system.rtos_cell().unwrap();
    let ret = system.hv.handle_hvc(
        &mut system.machine,
        CpuId(0),
        hc::HVC_CELL_SHUTDOWN,
        cell.0,
        0,
    );
    assert_eq!(ret, 0);
    assert_eq!(
        system.hv.cpu_owner(CpuId(1)),
        Some(certify_hypervisor::cell::ROOT_CELL)
    );
    assert_eq!(system.hv.cell(cell).unwrap().state(), CellState::ShutDown);
    assert!(system.machine.cpu(CpuId(1)).is_parked());
    // The ivshmem doorbell line was released.
    assert_eq!(
        system
            .machine
            .gic
            .targeted_cpu(certify_arch::IrqId(memmap::IVSHMEM_IRQ)),
        None
    );
}

#[test]
fn destroy_scrubs_cell_memory() {
    let mut system = running_system();
    let cell = system.rtos_cell().unwrap();
    let secret_addr = memmap::RTOS_RAM_BASE + 0x500;
    system
        .hv
        .guest_ram_write(&mut system.machine, CpuId(1), secret_addr, 0x5ec2_e700);
    assert_eq!(
        system.machine.ram().read32(secret_addr).unwrap(),
        0x5ec2_e700
    );
    system.hv.handle_hvc(
        &mut system.machine,
        CpuId(0),
        hc::HVC_CELL_DESTROY,
        cell.0,
        0,
    );
    assert_eq!(system.machine.ram().read32(secret_addr).unwrap(), 0);
}

#[test]
fn shared_memory_stays_shared_until_destroy() {
    let mut system = running_system();
    let addr = memmap::IVSHMEM_BASE + 0x20;
    system
        .hv
        .guest_ram_write(&mut system.machine, CpuId(1), addr, 0xfeed);
    assert_eq!(
        system
            .hv
            .guest_ram_read(&mut system.machine, CpuId(0), addr),
        0xfeed
    );
    // Not scrubbed on destroy (shared region belongs to the root too).
    let cell = system.rtos_cell().unwrap();
    system.hv.handle_hvc(
        &mut system.machine,
        CpuId(0),
        hc::HVC_CELL_DESTROY,
        cell.0,
        0,
    );
    assert_eq!(system.machine.ram().read32(addr).unwrap(), 0xfeed);
}

#[test]
fn nonroot_cell_cannot_issue_management_hypercalls() {
    let mut system = running_system();
    for (code, arg) in [
        (hc::HVC_CELL_CREATE, memmap::RTOS_RAM_BASE),
        (hc::HVC_CELL_DESTROY, 0),
        (hc::HVC_CELL_SHUTDOWN, 0),
        (hc::HVC_HYPERVISOR_DISABLE, 0),
    ] {
        let ret = system
            .hv
            .handle_hvc(&mut system.machine, CpuId(1), code, arg, 0);
        assert!(ret < 0, "management call {code} allowed from non-root");
    }
    // And the cell is still healthy — rejections are clean.
    assert!(!system.machine.cpu(CpuId(1)).is_parked());
}

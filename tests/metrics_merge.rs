//! Algebraic properties of the `certify_obs` instrument merges — the
//! observability mirror of `tests/stats_merge.rs`.
//!
//! Observed campaigns fold metrics per worker thread (or per shard
//! process) and merge at the end, so instrument correctness reduces to
//! the same algebra `CampaignStats` obeys: merge must be commutative
//! and associative, the default instrument must be a two-sided
//! identity, and folding any contiguous partition shard by shard must
//! reproduce the single fold — on *every* field. A [`Gauge`] is a pure
//! high-water mark (merged gauges answer "what was the worst level
//! anywhere"), which is what makes the full laws hold. Histogram
//! bucket-boundary and overflow behavior gets its own properties.

use certify_uncertified::obs::{EngineMetrics, Histogram, PhaseSample, ShardMetrics};
use proptest::collection;
use proptest::prelude::*;

/// One synthetic engine event: a trial's phase sample, a
/// reorder-residency reading, or a sink delivery.
type EngineOp = (u8, u64, u64, u64, u64);

fn engine_fold(ops: &[EngineOp]) -> EngineMetrics {
    let mut metrics = EngineMetrics::default();
    for &(kind, a, b, c, d) in ops {
        match kind % 3 {
            0 => {
                metrics.trials.inc();
                metrics.phases.record(&PhaseSample {
                    boot_ns: a,
                    steady_ns: b,
                    injection_ns: c,
                    classify_ns: d,
                });
                metrics.sink_rows.inc();
            }
            1 => metrics.reorder_residency.set(a % 64),
            _ => metrics.sink_bytes.add(a),
        }
    }
    metrics
}

/// One synthetic coordinator event: accepted rows, read frames, a CRC
/// reject, a retried attempt, or a shard wall-time reading.
type ShardOp = (u8, u64, u64);

fn shard_fold(ops: &[ShardOp]) -> ShardMetrics {
    let mut metrics = ShardMetrics::default();
    for &(kind, a, b) in ops {
        match kind % 5 {
            0 => metrics.rows.add(a % 512),
            1 => {
                metrics.frames.add(1 + a % 16);
                metrics.frame_bytes.add(b);
            }
            2 => metrics.crc_rejects.inc(),
            3 => {
                metrics.retries.inc();
                metrics.wasted_rerun_trials.add(a % 512);
            }
            _ => metrics.elapsed_ns.set(a),
        }
    }
    metrics
}

fn engine_ops() -> impl Strategy<Value = Vec<EngineOp>> {
    collection::vec(
        (
            any::<u8>(),
            0u64..5_000_000,
            0u64..5_000_000,
            0u64..5_000_000,
            0u64..5_000_000,
        ),
        0..32,
    )
}

fn shard_ops() -> impl Strategy<Value = Vec<ShardOp>> {
    collection::vec((any::<u8>(), any::<u64>(), 0u64..100_000), 0..32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine-metrics merge is commutative: a ∪ b == b ∪ a on every
    /// field, including the gauge (a pure high-water maximum).
    #[test]
    fn engine_merge_is_commutative(
        ops in engine_ops(),
        cut in 0.0f64..1.0,
    ) {
        let i = (ops.len() as f64 * cut) as usize;
        let (a, b) = (&ops[..i], &ops[i..]);

        let mut left = engine_fold(a);
        left.merge(&engine_fold(b));
        let mut right = engine_fold(b);
        right.merge(&engine_fold(a));

        prop_assert_eq!(&left, &right, "engine merge is not commutative");
    }

    /// Shard-metrics merge is commutative on every field.
    #[test]
    fn shard_merge_is_commutative(
        ops in shard_ops(),
        cut in 0.0f64..1.0,
    ) {
        let i = (ops.len() as f64 * cut) as usize;
        let (a, b) = (&ops[..i], &ops[i..]);

        let mut left = shard_fold(a);
        left.merge(&shard_fold(b));
        let mut right = shard_fold(b);
        right.merge(&shard_fold(a));

        prop_assert_eq!(&left, &right, "shard merge is not commutative");
    }

    /// Engine-metrics merge is associative and both orders equal the
    /// single fold's counters and histograms.
    #[test]
    fn engine_merge_is_associative(
        ops in engine_ops(),
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let i = (ops.len() as f64 * cut_a) as usize;
        let j = i + ((ops.len() - i) as f64 * cut_b) as usize;
        let (a, b, c) = (&ops[..i], &ops[i..j], &ops[j..]);

        let mut left = engine_fold(a);
        left.merge(&engine_fold(b));
        left.merge(&engine_fold(c));

        let mut right_tail = engine_fold(b);
        right_tail.merge(&engine_fold(c));
        let mut right = engine_fold(a);
        right.merge(&right_tail);

        prop_assert_eq!(&left, &right, "engine merge is not associative");
    }

    /// The default engine instrument is a two-sided merge identity.
    #[test]
    fn engine_merge_with_default_is_identity(ops in engine_ops()) {
        let metrics = engine_fold(&ops);

        let mut left = EngineMetrics::default();
        left.merge(&metrics);
        prop_assert_eq!(&left, &metrics, "default ∪ m != m");

        let mut right = metrics.clone();
        right.merge(&EngineMetrics::default());
        prop_assert_eq!(&right, &metrics, "m ∪ default != m");
    }

    /// Worker-local folds merged in order reproduce the single fold's
    /// counters, histograms and high-water marks — the exact shape the
    /// observed engine computes per worker thread.
    #[test]
    fn engine_worker_fold_equals_single_fold(
        ops in engine_ops(),
        workers in 1usize..6,
    ) {
        let mut merged = EngineMetrics::default();
        for k in 0..workers {
            let start = k * ops.len() / workers;
            let end = (k + 1) * ops.len() / workers;
            merged.merge(&engine_fold(&ops[start..end]));
        }
        let single = engine_fold(&ops);
        prop_assert_eq!(merged.trials, single.trials);
        prop_assert_eq!(&merged.phases, &single.phases);
        prop_assert_eq!(merged.sink_rows, single.sink_rows);
        prop_assert_eq!(merged.sink_bytes, single.sink_bytes);
        prop_assert_eq!(
            merged.reorder_residency.high_water(),
            single.reorder_residency.high_water(),
            "residency high-water must survive partitioning"
        );
    }

    /// Shard-metrics merge is associative.
    #[test]
    fn shard_merge_is_associative(
        ops in shard_ops(),
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let i = (ops.len() as f64 * cut_a) as usize;
        let j = i + ((ops.len() - i) as f64 * cut_b) as usize;
        let (a, b, c) = (&ops[..i], &ops[i..j], &ops[j..]);

        let mut left = shard_fold(a);
        left.merge(&shard_fold(b));
        left.merge(&shard_fold(c));

        let mut right_tail = shard_fold(b);
        right_tail.merge(&shard_fold(c));
        let mut right = shard_fold(a);
        right.merge(&right_tail);

        prop_assert_eq!(&left, &right, "shard merge is not associative");
    }

    /// The default shard instrument is a two-sided merge identity.
    #[test]
    fn shard_merge_with_default_is_identity(ops in shard_ops()) {
        let metrics = shard_fold(&ops);

        let mut left = ShardMetrics::default();
        left.merge(&metrics);
        prop_assert_eq!(&left, &metrics, "default ∪ m != m");

        let mut right = metrics.clone();
        right.merge(&ShardMetrics::default());
        prop_assert_eq!(&right, &metrics, "m ∪ default != m");
    }

    /// Per-shard folds merged in any contiguous partition reproduce
    /// the single fold, on every field.
    #[test]
    fn shard_fold_equals_single_fold(
        ops in shard_ops(),
        shards in 1usize..6,
    ) {
        let mut merged = ShardMetrics::default();
        for k in 0..shards {
            let start = k * ops.len() / shards;
            let end = (k + 1) * ops.len() / shards;
            merged.merge(&shard_fold(&ops[start..end]));
        }
        prop_assert_eq!(&merged, &shard_fold(&ops));
    }

    /// Bucket discipline: bounds are *inclusive* uppers — a sample
    /// equal to a bound lands in that bound's bucket, one past it in
    /// the next — and anything above the last bound overflows. The
    /// per-bucket counts always re-total to `count()`.
    #[test]
    fn histogram_buckets_are_inclusive_uppers(samples in collection::vec(0u64..4_000, 0..64)) {
        let bounds: Vec<u64> = vec![100, 500, 1_000, 2_000];
        let mut histogram = Histogram::with_bounds(bounds.clone());
        for &s in &samples {
            histogram.record(s);
        }
        prop_assert_eq!(histogram.counts().iter().sum::<u64>(), histogram.count());
        prop_assert_eq!(histogram.count(), samples.len() as u64);
        for (bucket, &count) in histogram.counts().iter().enumerate() {
            let lower = if bucket == 0 { 0 } else { bounds[bucket - 1] + 1 };
            let expected = samples
                .iter()
                .filter(|&&s| s >= lower && bounds.get(bucket).is_none_or(|&b| s <= b))
                .count() as u64;
            prop_assert_eq!(count, expected, "bucket {} miscounted", bucket);
        }
    }

    /// Quantile estimates are monotone in `q` and always inside the
    /// observed `[min, max]`, including for overflow-bucket ranks.
    #[test]
    fn histogram_quantiles_stay_in_range(samples in collection::vec(0u64..10_000, 1..64)) {
        let mut histogram = Histogram::with_bounds(vec![50, 200, 1_000]);
        for &s in &samples {
            histogram.record(s);
        }
        let mut previous = 0;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let estimate = histogram.quantile(q);
            prop_assert!(estimate >= histogram.min(), "q={} below min", q);
            prop_assert!(estimate <= histogram.max(), "q={} above max", q);
            prop_assert!(estimate >= previous, "quantile not monotone at q={}", q);
            previous = estimate;
        }
        prop_assert_eq!(histogram.quantile(1.0), histogram.max());
    }
}

/// Merging histograms with different bucket layouts is a bug, not a
/// degradation — it must panic.
#[test]
#[should_panic(expected = "different bucket layouts")]
fn histogram_merge_rejects_mismatched_layouts() {
    let mut a = Histogram::with_bounds(vec![10, 20]);
    let b = Histogram::with_bounds(vec![10, 30]);
    a.merge(&b);
}

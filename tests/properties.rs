//! Property-based integration tests over the full stack.

use certify_arch::CpuId;
use certify_board::memmap;
use certify_core::campaign::Scenario;
use certify_core::{classify, InjectionSpec, Intensity, Outcome, System};
use certify_guest_linux::MgmtScript;
use certify_hypervisor::hypercall as hc;
use certify_hypervisor::{HandlerKind, Hypervisor, SystemConfig};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any single-bit corruption of the staged system configuration
    /// makes `HYPERVISOR_ENABLE` fail cleanly: the hypervisor stays
    /// disabled and a retry with the pristine blob succeeds (no
    /// residual state).
    #[test]
    fn corrupted_config_blob_never_enables(byte_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut machine = certify_board::Machine::new_banana_pi();
        machine.cpu_mut(CpuId(0)).power_on();
        let platform = SystemConfig::banana_pi_demo();
        let mut hv = Hypervisor::new(platform.clone());
        let addr = memmap::ROOT_RAM_BASE + 0x0100_0000;
        let blob = platform.serialize();
        hv.stage_blob(&mut machine, addr, &blob);

        let byte = ((blob.len() as f64 - 1.0) * byte_frac) as u32;
        let original = machine.ram().read8(addr + 4 + byte).unwrap();
        machine.ram_mut().write8(addr + 4 + byte, original ^ (1 << bit)).unwrap();

        let ret = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_HYPERVISOR_ENABLE, addr, 0);
        prop_assert!(ret < 0, "corrupted blob accepted");
        prop_assert!(!hv.is_enabled());

        machine.ram_mut().write8(addr + 4 + byte, original).unwrap();
        let ret = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_HYPERVISOR_ENABLE, addr, 0);
        prop_assert_eq!(ret, 0);
    }

    /// The classifier is total and deterministic: any seeded E3 trial
    /// produces exactly one outcome, and re-running the same seed
    /// produces the same outcome.
    #[test]
    fn classification_is_deterministic(seed in 0u64..5000) {
        let a = Scenario::e3_fig3().run_trial(seed);
        let b = Scenario::e3_fig3().run_trial(seed);
        prop_assert_eq!(a.outcome, b.outcome);
        prop_assert_eq!(a.report.injections, b.report.injections);
    }

    /// Whatever the injection spec, the system never wedges: a run
    /// always completes its step budget and classification always
    /// returns.
    #[test]
    fn system_never_wedges_under_random_specs(
        seed in 0u64..1000,
        rate in 1u64..40,
        target_trap in any::<bool>(),
        cpu in 0u32..2,
    ) {
        let handler = if target_trap {
            HandlerKind::ArchHandleTrap
        } else {
            HandlerKind::ArchHandleHvc
        };
        let spec = InjectionSpec::new(
            Intensity::Medium,
            [handler],
            Some(CpuId(cpu)),
        ).with_rate(rate);
        let mut system = System::new(MgmtScript::bring_up_and_run(800));
        system.install_injector(spec, seed);
        system.run(1500);
        prop_assert_eq!(system.steps_run(), 1500);
        let _ = classify(&system);
    }

    /// Fault isolation invariant: injections filtered to CPU 1 at
    /// *high* intensity (argument registers only) never take down the
    /// root cell — every outcome is one of {Correct, CpuPark,
    /// InconsistentState, InvalidArguments}.
    #[test]
    fn high_intensity_cpu1_never_panics_the_system(seed in 0u64..300) {
        let trial = Scenario::e2_nonroot_high().run_trial(seed);
        prop_assert_ne!(trial.outcome, Outcome::PanicPark);
    }

    /// Golden runs are injection-free and always classified Correct,
    /// independent of run length.
    #[test]
    fn golden_runs_always_correct(extra in 0u64..1500) {
        let mut system = System::new(MgmtScript::bring_up_and_run(1200 + extra));
        system.run(1800 + extra);
        let report = classify(&system);
        prop_assert_eq!(report.outcome, Outcome::Correct);
        prop_assert!(report.injections.is_empty());
    }

    /// Register single/double bit-flip models are self-inverse:
    /// replaying the model with the same RNG state flips the same
    /// bits, restoring every register.
    #[test]
    fn register_bit_flips_are_self_inverse(seed in 0u64..5000, double in any::<bool>(), fill in any::<u32>()) {
        use certify_arch::{Reg, RegisterFile};
        use certify_core::FaultModel;
        let model = if double {
            FaultModel::DoubleBitFlip { pool: Reg::ALL.to_vec() }
        } else {
            FaultModel::single_bit_flip()
        };
        let mut regs = RegisterFile::new();
        for r in Reg::ALL {
            regs.write(r, fill);
        }
        let pristine = regs.clone();
        let first = model.apply(&mut regs, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert!(!first.is_empty());
        prop_assert_ne!(&regs, &pristine, "flip changed nothing");
        let second = model.apply(&mut regs, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert_eq!(regs, pristine, "second flip did not restore");
        prop_assert_eq!(
            first.iter().map(|f| (f.reg, f.bit)).collect::<Vec<_>>(),
            second.iter().map(|f| (f.reg, f.bit)).collect::<Vec<_>>()
        );
    }

    /// Memory single/double bit-flip models are self-inverse on the
    /// corrupted word, for RAM words and stage-2 descriptors alike.
    #[test]
    fn memory_bit_flips_are_self_inverse(seed in 0u64..5000, double in any::<bool>(), fill in any::<u32>(), word_frac in 0.0f64..1.0) {
        use certify_core::memfault::{MemFaultModel, MemRegionKind};
        let model = if double {
            MemFaultModel::DoubleBitFlip
        } else {
            MemFaultModel::SingleBitFlip
        };
        let mut machine = certify_board::Machine::new_banana_pi();
        let mut hv = Hypervisor::new(SystemConfig::banana_pi_demo());
        let (base, size) = MemRegionKind::NonRootRam.span();
        let addr = base + 4 * ((f64::from(size / 4 - 1) * word_frac) as u32);
        machine.ram_mut().write32(addr, fill).unwrap();

        let first = model
            .apply(MemRegionKind::NonRootRam, addr, &mut machine, &mut hv,
                   &mut rand::rngs::StdRng::seed_from_u64(seed))
            .unwrap();
        prop_assert_ne!(machine.ram().read32(addr).unwrap(), fill);
        let second = model
            .apply(MemRegionKind::NonRootRam, addr, &mut machine, &mut hv,
                   &mut rand::rngs::StdRng::seed_from_u64(seed))
            .unwrap();
        prop_assert_eq!(machine.ram().read32(addr).unwrap(), fill, "second flip did not restore");
        prop_assert_eq!(first[0].after, second[0].before);
        prop_assert_eq!(first[0].before, second[0].after);
    }

    /// Memory injection never panics a run, whatever the sampled
    /// region — including windows deliberately covering unmapped
    /// space (those record skips instead).
    #[test]
    fn memory_injection_never_wedges(seed in 0u64..500, rate in 5u64..60, hole in any::<bool>()) {
        use certify_core::memfault::{MemFaultModel, MemRegionKind, MemTarget};
        use certify_core::MemorySpec;
        let target = if hole {
            MemTarget::new([
                MemRegionKind::NonRootRam,
                MemRegionKind::Custom { base: 0x1000_0000, size: 0x1000 },
            ])
        } else {
            MemTarget::all()
        };
        let spec = MemorySpec::new(
            MemFaultModel::SingleBitFlip,
            target,
            [HandlerKind::ArchHandleTrap, HandlerKind::ArchHandleHvc],
            None,
        ).with_rate(rate);
        let mut system = System::new(MgmtScript::bring_up_and_run(800));
        system.install_mem_injector(spec, seed);
        system.run(1500);
        prop_assert_eq!(system.steps_run(), 1500);
        let _ = classify(&system);
    }
}

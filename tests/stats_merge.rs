//! Algebraic properties of `CampaignStats::merge` — the sharding
//! primitive.
//!
//! A sharded campaign folds each shard's trials locally and merges
//! the per-shard stats at the coordinator, so correctness of the
//! whole tier reduces to: *merge of any partition's folds equals the
//! single fold*, which in turn needs merge to be associative with the
//! empty stats as identity. The proptests here exercise that algebra
//! over synthetic trial populations (every outcome, watchdog/monitor
//! evidence, multi-region memory faults) without paying for real
//! simulator runs; one real-campaign test pins the same laws on
//! `Campaign::run_range_streamed` output.

use certify_core::campaign::{Campaign, Scenario, TrialResult};
use certify_core::classify::RunReport;
use certify_core::memfault::MemLocus;
use certify_core::{
    AppliedMemFault, CampaignStats, MemInjectionRecord, MemRegionKind, NullSink, Outcome,
};
use proptest::collection;
use proptest::prelude::*;

/// A synthetic trial covering every field `CampaignStats::record`
/// reads: outcome, both injection counts, per-region applied memory
/// faults, watchdog expiry and monitor alarms.
#[allow(clippy::too_many_arguments)]
fn synth_trial(
    seed: u64,
    outcome_tag: u8,
    injections: u8,
    mem_injections: u8,
    region_tags: Vec<u8>,
    watchdog: Option<u64>,
    alarms: u8,
) -> TrialResult {
    let outcome = Outcome::ALL[outcome_tag as usize % Outcome::ALL.len()];
    let mem_records: Vec<MemInjectionRecord> = region_tags
        .iter()
        .map(|&tag| MemInjectionRecord {
            step: 1,
            filtered_call: 1,
            faults: vec![AppliedMemFault {
                region: MemRegionKind::ALL[tag as usize % MemRegionKind::ALL.len()],
                locus: MemLocus::RamWord,
                addr: 0x1000,
                before: 0,
                after: 1,
                len: 4,
                live: false,
            }],
            skipped: None,
        })
        .collect();
    TrialResult {
        seed,
        outcome,
        injection_count: injections as usize,
        mem_injection_count: mem_injections as usize,
        report: RunReport {
            outcome,
            injections: Vec::new(),
            mem_injections: mem_records,
            notes: Vec::new(),
            cell_state: None,
            cpu1_park: None,
            serial_line_count: 0,
            watchdog_first_expiry: watchdog,
            monitor_alarms: alarms as usize,
        },
    }
}

type TrialSpec = (u8, u8, u8, Vec<u8>, Option<u64>, u8);

fn population(specs: Vec<TrialSpec>) -> Vec<TrialResult> {
    specs
        .into_iter()
        .enumerate()
        .map(|(i, (outcome, inj, mem, regions, wd, alarms))| {
            synth_trial(i as u64, outcome, inj, mem, regions, wd, alarms)
        })
        .collect()
}

fn fold(name: &str, trials: &[TrialResult]) -> CampaignStats {
    let mut stats = CampaignStats::new(name);
    for trial in trials {
        stats.record(trial);
    }
    stats
}

fn trial_spec_strategy() -> impl Strategy<Value = Vec<TrialSpec>> {
    collection::vec(
        (
            any::<u8>(),
            0u8..4,
            0u8..4,
            collection::vec(any::<u8>(), 0..4),
            (0u64..2, 0u64..5000).prop_map(|(some, step)| (some == 1).then_some(step)),
            0u8..3,
        ),
        0..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c), and both
    /// equal the single fold over the concatenation.
    #[test]
    fn merge_is_associative(
        specs in trial_spec_strategy(),
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let trials = population(specs);
        let i = (trials.len() as f64 * cut_a) as usize;
        let j = i + ((trials.len() - i) as f64 * cut_b) as usize;
        let (a, b, c) = (&trials[..i], &trials[i..j], &trials[j..]);

        let mut left = fold("s", a);
        left.merge(&fold("s", b));
        left.merge(&fold("s", c));

        let mut right_tail = fold("s", b);
        right_tail.merge(&fold("s", c));
        let mut right = fold("s", a);
        right.merge(&right_tail);

        prop_assert_eq!(&left, &right, "merge is not associative");
        prop_assert_eq!(&left, &fold("s", &trials), "merge diverged from the single fold");
    }

    /// Empty stats are a two-sided identity for merge.
    #[test]
    fn merge_with_empty_is_identity(specs in trial_spec_strategy()) {
        let stats = fold("s", &population(specs));

        let mut left = CampaignStats::new("s");
        left.merge(&stats);
        prop_assert_eq!(&left, &stats, "empty ∪ s != s");

        let mut right = stats.clone();
        right.merge(&CampaignStats::new("s"));
        prop_assert_eq!(&right, &stats, "s ∪ empty != s");
    }

    /// Folding any contiguous partition shard by shard and merging in
    /// order reproduces the single fold — the exact shape a sharded
    /// campaign's coordinator computes.
    #[test]
    fn shard_fold_equals_single_fold(
        specs in trial_spec_strategy(),
        shards in 1usize..6,
    ) {
        let trials = population(specs);
        let mut merged = CampaignStats::new("s");
        for k in 0..shards {
            let start = k * trials.len() / shards;
            let end = (k + 1) * trials.len() / shards;
            merged.merge(&fold("s", &trials[start..end]));
        }
        prop_assert_eq!(merged, fold("s", &trials));
    }
}

/// The same law on *real* engine output: per-range streamed stats
/// from `run_range_streamed` merge to the full `run_streamed` stats,
/// in order and in a rotated order.
#[test]
fn real_campaign_range_stats_merge_to_the_full_run() {
    let campaign = Campaign::new(Scenario::e1_root_high(), 12, 0xD5);
    let full = campaign.run_streamed(&mut NullSink);
    let ranges = [(0usize, 5usize), (5, 3), (8, 4)];

    let mut in_order = CampaignStats::new("e1-root-high");
    for (start, len) in ranges {
        in_order.merge(&campaign.run_range_streamed(start, len, &mut NullSink));
    }
    assert_eq!(in_order, full);

    // Merge order must not matter for any field that doesn't track
    // order (everything: counts, histograms, min/max/sums).
    let mut rotated = CampaignStats::new("e1-root-high");
    for (start, len) in [(8usize, 4usize), (0, 5), (5, 3)] {
        rotated.merge(&campaign.run_range_streamed(start, len, &mut NullSink));
    }
    assert_eq!(rotated, full);
}

//! The streamed campaign engine: equivalence with the buffered path,
//! seed-order delivery, and the O(workers) residency bound.
//!
//! Contract under test (see `Campaign::run_parallel_streamed`):
//!
//! * same seeds ⇒ identical `CampaignStats` and byte-identical CSV
//!   from `run`, `run_streamed` and `run_parallel_streamed`, at any
//!   worker count;
//! * sinks always see trials in seed order (`seq` = 0, 1, 2, …);
//! * at most `workers` completed-but-undelivered reports exist at any
//!   time, even when the sink is slower than the workers.

use certify_analysis::{campaign_to_csv, CsvSink};
use certify_core::campaign::{Campaign, Scenario, TrialResult};
use certify_core::memfault::{MemFaultModel, MemTarget};
use certify_core::{CampaignStats, NullSink, TrialSink};
use proptest::prelude::*;

mod common;
use common::worker_counts;

/// Buffered run, sequential stream and parallel stream (all worker
/// counts) must produce identical stats — and identical CSV bytes.
fn assert_streamed_equals_buffered(campaign: &Campaign) {
    let buffered = campaign.run();
    let reference_stats = buffered.stats();
    let reference_csv = campaign_to_csv(&buffered);

    let mut seq_csv = CsvSink::in_memory();
    let seq_stats = campaign.run_streamed(&mut seq_csv);
    assert_eq!(
        seq_stats,
        reference_stats,
        "run_streamed stats diverged for {}",
        campaign.scenario().name
    );
    assert_eq!(
        seq_csv.into_csv(),
        reference_csv,
        "run_streamed CSV diverged for {}",
        campaign.scenario().name
    );

    for workers in worker_counts() {
        let mut par_csv = CsvSink::in_memory();
        let par_stats = campaign.run_parallel_streamed(workers, &mut par_csv);
        assert_eq!(
            par_stats,
            reference_stats,
            "run_parallel_streamed({workers}) stats diverged for {}",
            campaign.scenario().name
        );
        assert_eq!(
            par_csv.into_csv(),
            reference_csv,
            "run_parallel_streamed({workers}) CSV diverged for {}",
            campaign.scenario().name
        );
    }
}

#[test]
fn e1_streamed_equals_buffered_stats_and_csv() {
    assert_streamed_equals_buffered(&Campaign::new(Scenario::e1_root_high(), 12, 0xD5));
}

#[test]
fn e3_streamed_equals_buffered_stats_and_csv() {
    assert_streamed_equals_buffered(&Campaign::new(Scenario::e3_fig3(), 8, 2022));
}

#[test]
fn memory_campaign_streamed_equals_buffered_stats_and_csv() {
    assert_streamed_equals_buffered(&Campaign::new(
        Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()),
        8,
        0xE6,
    ));
}

#[test]
fn mixed_campaign_streamed_equals_buffered_stats_and_csv() {
    assert_streamed_equals_buffered(&Campaign::new(Scenario::e7_mixed(), 6, 21));
}

#[test]
fn streamed_stats_equal_the_engines_own_fold() {
    // The stats the engine returns are the same as folding the sink's
    // deliveries by hand.
    let campaign = Campaign::new(Scenario::e1_root_high(), 9, 77);
    let mut folded = CampaignStats::new("e1-root-high");
    let returned = campaign.run_parallel_streamed(4, &mut folded);
    assert_eq!(folded, returned);
}

/// A deliberately slow sink: stalls on the first delivery so workers
/// race far ahead — the worst case for the residency bound.
struct SlowSink {
    delivered: Vec<usize>,
}

impl TrialSink for SlowSink {
    fn accept(&mut self, seq: usize, _trial: TrialResult) {
        if seq == 0 {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        self.delivered.push(seq);
    }
}

#[test]
fn undelivered_reports_never_exceed_the_worker_count() {
    let trials = 24;
    for workers in [1usize, 2, 4] {
        let campaign = Campaign::new(Scenario::golden(200), trials, 3);
        let mut sink = SlowSink {
            delivered: Vec::new(),
        };
        let (stats, high_water) = campaign.run_parallel_streamed_instrumented(workers, &mut sink);
        assert_eq!(stats.trials, trials);
        assert_eq!(sink.delivered, (0..trials).collect::<Vec<_>>());
        assert!(
            high_water <= workers,
            "{high_water} undelivered reports with {workers} workers"
        );
        assert!(high_water >= 1, "nothing was ever undelivered");
    }
}

#[test]
fn high_water_is_bounded_even_with_more_workers_than_trials() {
    let campaign = Campaign::new(Scenario::golden(200), 3, 1);
    let (stats, high_water) = campaign.run_parallel_streamed_instrumented(64, &mut NullSink);
    assert_eq!(stats.trials, 3);
    assert!(high_water <= 3, "workers clamp to the trial count");
}

#[test]
fn empty_campaign_streams_nothing() {
    let campaign = Campaign::new(Scenario::golden(100), 0, 1);
    let mut seen = 0usize;
    let stats = campaign.run_parallel_streamed(4, &mut |_seq: usize, _trial: TrialResult| {
        seen += 1;
    });
    assert_eq!(stats.trials, 0);
    assert_eq!(seen, 0);
}

/// Records exactly what the sink saw, for order assertions.
#[derive(Default)]
struct OrderSink {
    deliveries: Vec<(usize, u64)>,
}

impl TrialSink for OrderSink {
    fn accept(&mut self, seq: usize, trial: TrialResult) {
        self.deliveries.push((seq, trial.seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the trial count, worker count and base seed, sinks
    /// see consecutive `seq` values with seeds `base_seed + seq`.
    #[test]
    fn sink_deliveries_arrive_in_seed_order(
        trials in 1usize..10,
        workers in 1usize..6,
        base_seed in 0u64..1000,
    ) {
        let campaign = Campaign::new(Scenario::golden(120), trials, base_seed);
        let mut sink = OrderSink::default();
        let stats = campaign.run_parallel_streamed(workers, &mut sink);
        prop_assert_eq!(stats.trials, trials);
        let expected: Vec<(usize, u64)> =
            (0..trials).map(|i| (i, base_seed + i as u64)).collect();
        prop_assert_eq!(sink.deliveries, expected);
    }
}

//! In-tree stand-in for `criterion`, used because this workspace
//! builds fully offline.
//!
//! It keeps the bench targets' source compatible with the real
//! criterion API (`Criterion::default().configure_from_args()
//! .sample_size(n)`, `bench_function`, `Bencher::iter`,
//! `final_summary`, `black_box`) and takes honest wall-clock
//! measurements — per-sample mean/min/max over `sample_size` samples —
//! without the statistical machinery (outlier analysis, HTML reports)
//! of the real crate.

use std::time::{Duration, Instant};

/// An opaque barrier preventing the optimiser from deleting a
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Timing loop handed to a `bench_function` closure.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, collecting one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Benchmark driver mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stub has no CLI options.
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Sets how many timing samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Criterion {
        assert!(samples > 0, "sample_size must be positive");
        self.sample_count = samples;
        self
    }

    /// Runs one named benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut bencher);
        let taken = bencher.samples.len().max(1) as u32;
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / taken;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let max = bencher.samples.iter().max().copied().unwrap_or_default();
        println!(
            "bench {name:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({taken} samples)"
        );
        self
    }

    /// Accepted for API compatibility; summaries print per-benchmark.
    pub fn final_summary(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut calls = 0u32;
        Criterion::default()
            .sample_size(3)
            .bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }
}

//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, Standard};
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Standard> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T` (e.g. `any::<u32>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

//! Fixed-size array strategies (`array::uniform16`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `[T; 16]` with every element drawn from the
/// same element strategy.
pub fn uniform16<S: Strategy>(element: S) -> Uniform16<S> {
    Uniform16 { element }
}

/// Strategy returned by [`uniform16`].
#[derive(Debug, Clone)]
pub struct Uniform16<S> {
    element: S,
}

impl<S: Strategy> Strategy for Uniform16<S> {
    type Value = [S::Value; 16];

    fn sample(&self, rng: &mut TestRng) -> [S::Value; 16] {
        // `from_fn` visits indices in order, keeping sampling
        // deterministic.
        std::array::from_fn(|_| self.element.sample(rng))
    }
}

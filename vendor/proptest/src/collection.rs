//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A length specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> SizeRange {
        SizeRange {
            min: len,
            max: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and
/// whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min + 1 == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_length_bounds() {
        let mut rng = TestRng::for_test("vec_respects_length_bounds");
        let strategy = vec(0u8..10, 2..6);
        for _ in 0..200 {
            let v = strategy.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn fixed_length_vec() {
        let mut rng = TestRng::for_test("fixed_length_vec");
        let strategy = vec(0u8..10, 4usize);
        assert_eq!(strategy.sample(&mut rng).len(), 4);
    }
}

//! In-tree stand-in for `proptest`, used because this workspace
//! builds fully offline.
//!
//! It supports the subset of the proptest surface the workspace's
//! property tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), range / `any::<T>()` / tuple /
//! `prop_map` / `collection::vec` / `array::uniform16` strategies,
//! and the `prop_assert*` / `prop_assume!` macros. Two deliberate
//! simplifications versus upstream:
//!
//! - **No shrinking.** A failing case panics with the failure message;
//!   inputs are printed by the assert macros, not minimised.
//! - **Deterministic sampling.** Each test derives its RNG seed from
//!   its own name, so failures reproduce exactly on re-run.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current test case with a formatted message unless `cond`
/// holds. Must run inside a context returning
/// `Result<_, TestCaseError>` (the [`proptest!`] body or a closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` for inequality, printing both values on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Discards the current case (without counting it) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn holds(x in 0u32..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr)
     $( $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strategy:expr ),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng); )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(reason),
                        ) => {
                            rejected += 1;
                            if rejected > 1024 + config.cases * 16 {
                                panic!(
                                    "proptest `{}`: too many rejected cases \
                                     (last prop_assume: {reason})",
                                    stringify!($name),
                                );
                            }
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "proptest `{}` failed after {} passing case(s): {}",
                                stringify!($name),
                                accepted,
                                message,
                            );
                        }
                    }
                }
            }
        )*
    };
}

//! The [`Strategy`] trait and the built-in strategy combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree: strategies sample
/// directly and nothing shrinks.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map_fn`.
    fn prop_map<O, F>(self, map_fn: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map_fn,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map_fn: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map_fn)(self.strategy.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = TestRng::for_test("range_sampling_stays_in_bounds");
        for _ in 0..500 {
            let v = (10u32..20).sample(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn prop_map_applies_function() {
        let mut rng = TestRng::for_test("prop_map_applies_function");
        let doubled = (0u32..100).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(doubled.sample(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut rng = TestRng::for_test("tuples_sample_componentwise");
        let (a, b) = (0u8..3, 10u64..15).sample(&mut rng);
        assert!(a < 3);
        assert!((10..15).contains(&b));
    }
}

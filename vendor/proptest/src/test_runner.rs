//! Test-runner types: configuration, case errors and the per-test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` (not counted).
    Reject(String),
    /// An assertion failed; the message explains what broke.
    Fail(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// A discarded case.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

/// The RNG strategies draw from.
///
/// Seeded from the test's name, so each test owns a stable stream:
/// failures reproduce exactly, independent of sibling tests or
/// execution order.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the deterministic RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a folds the name into a 64-bit seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

//! In-tree stand-in for `rand`, used because this workspace builds
//! fully offline.
//!
//! It mirrors the small slice of the `rand 0.8` API the injection
//! stack uses — `SeedableRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range` and `rngs::StdRng` — on top of a SplitMix64
//! generator. The stream differs from upstream `StdRng` (ChaCha12),
//! which is fine: campaign determinism only requires that the same
//! seed yields the same stream *within this workspace*, and every
//! test pins expectations against this generator.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]; the
    /// high bits of SplitMix64 are the better-mixed ones).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value of `Self` from raw random bits (the stub's
/// analogue of the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// A half-open range a value can be drawn from (the stub's analogue
/// of `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is ~2^-64 for the spans used here; the
                // stub favours simplicity over perfect uniformity.
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $ty = Standard::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: SplitMix64.
    ///
    /// Passes through every 64-bit seed untouched, so distinct trial
    /// seeds produce distinct, reproducible streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — the canonical
            // constants; the full 2^64 state space is a single cycle.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u8..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! In-tree stand-in for `serde`, used because this workspace builds
//! fully offline.
//!
//! The workspace derives `Serialize`/`Deserialize` on its report and
//! result types to keep them serialization-ready, but no code path
//! serializes anything yet — so the traits here are empty markers and
//! the derives (re-exported from the sibling `serde_derive` stub) emit
//! empty impls. Swapping the real serde back in is a `vendor/`-only
//! change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

//! In-tree stand-in for `serde_derive`, used because this workspace
//! builds fully offline.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! marker derives — nothing ever calls a serializer — so the derives
//! here emit empty impls of the marker traits defined in the sibling
//! `serde` stub crate. Dropping real `serde`/`serde_derive` back in
//! requires no source changes outside `vendor/`.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name a derive was applied to.
///
/// Scans top-level tokens for the `struct`/`enum`/`union` keyword and
/// returns the identifier that follows. Attribute contents are token
/// groups, so their interior idents are never visited.
fn derived_type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                for next in tokens.by_ref() {
                    if let TokenTree::Ident(name) = next {
                        return name.to_string();
                    }
                }
            }
        }
    }
    panic!("serde stub derive: could not find a struct/enum name");
}

/// Rejects generic types: the stub emits `impl Trait for Name` with no
/// generic parameters, so a generic derive target would not compile.
fn assert_not_generic(input: &TokenStream) {
    let mut after_name = false;
    for token in input.clone() {
        match &token {
            TokenTree::Ident(ident) => {
                let kw = ident.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    after_name = true;
                }
            }
            TokenTree::Punct(p) if after_name && p.as_char() == '<' => {
                panic!(
                    "serde stub derive: generic types are not supported \
                     (extend vendor/serde_derive if you need them)"
                );
            }
            _ => {}
        }
    }
}

/// Marker derive matching `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    assert_not_generic(&input);
    let name = derived_type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}

/// Marker derive matching `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    assert_not_generic(&input);
    let name = derived_type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}
